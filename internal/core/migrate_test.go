package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vclock"
)

// migArray builds a real-time RAID-x plus a factory for additional
// disks of matching geometry (the devices a grow attaches).
func migArray(t *testing.T, nodes, k int, blocks int64, opt Options) (*RAIDx, []*disk.Disk, func(n int) []raid.Dev) {
	t.Helper()
	devs := make([]raid.Dev, nodes*k)
	raw := make([]*disk.Disk, nodes*k)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	a, err := New(devs, nodes, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	next := nodes * k
	mk := func(n int) []raid.Dev {
		out := make([]raid.Dev, n)
		for i := range out {
			out[i] = disk.New(nil, fmt.Sprintf("d%d", next), store.NewMem(bs, blocks), disk.DefaultModel())
			next++
		}
		return out
	}
	return a, raw, mk
}

func fillRandom(t *testing.T, a *RAIDx, seed int64) []byte {
	t.Helper()
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(bs))
	rand.New(rand.NewSource(seed)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return data
}

func checkContent(t *testing.T, a *RAIDx, want []byte, what string) {
	t.Helper()
	ctx := context.Background()
	got := make([]byte, len(want))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("%s: read back: %v", what, err)
	}
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: content diverges at byte %d (block %d)", what, i, int64(i)/int64(bs))
			}
		}
	}
}

// TestMigrationGrowLiveTraffic is the core of the grow drill: expand
// 4 nodes to 12 while writers hammer the array. Every foreground write
// must succeed (no retries allowed), the final content must match the
// writers' shadow, redundancy must verify, and the migration must have
// moved only the minimal block set.
func TestMigrationGrowLiveTraffic(t *testing.T) {
	const blocks = 96 // half=48, gs=3: 192 data blocks over 4 disks
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	shadow := fillRandom(t, a, 7)
	var shadowMu sync.Mutex

	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writeErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			span := a.Blocks() / 4
			for {
				select {
				case <-stop:
					return
				default:
				}
				lb := int64(w)*span + rng.Int63n(span)
				n := 1 + rng.Int63n(4)
				if lb+n > int64(w+1)*span {
					n = int64(w+1)*span - lb
				}
				buf := make([]byte, n*int64(bs))
				rng.Read(buf)
				if err := a.WriteBlocks(ctx, lb, buf); err != nil {
					writeErrs.Add(1)
					t.Errorf("foreground write during rebalance: %v", err)
					return
				}
				shadowMu.Lock()
				copy(shadow[lb*int64(bs):], buf)
				shadowMu.Unlock()
			}
		}()
	}
	// Pace yields so the writers genuinely interleave with copy windows.
	pace := func(ctx context.Context, bytes int) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	}
	var lastCkpt int64
	if err := m.Run(ctx, pace, func(cursor int64) error { lastCkpt = cursor; return nil }); err != nil {
		t.Fatalf("migration run: %v", err)
	}
	close(stop)
	wg.Wait()
	if writeErrs.Load() != 0 {
		t.Fatalf("%d foreground write errors during rebalance", writeErrs.Load())
	}
	if lastCkpt != a.Blocks() {
		t.Fatalf("final checkpoint %d, want %d", lastCkpt, a.Blocks())
	}
	if _, _, active := a.Migrating(); active {
		t.Fatal("migration still active after Run returned")
	}
	if got := a.Epoch().Gen(); got != 1 {
		t.Fatalf("epoch generation %d after grow, want 1", got)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	shadowMu.Lock()
	defer shadowMu.Unlock()
	checkContent(t, a, shadow, "after grow")
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after grow: %v", err)
	}
	// Minimal movement: growing 4 -> 12 must move 8/12 of the data
	// blocks and no images, within the issue's 1.25x slack.
	minMoves := a.Blocks() * 8 / 12
	st := m.Status()
	if st.MovedBlocks < minMoves || st.MovedBlocks > minMoves+minMoves/4 {
		t.Fatalf("moved %d blocks, want within [%d, %d]", st.MovedBlocks, minMoves, minMoves+minMoves/4)
	}
	if st.MovedBytes != st.MovedBlocks*int64(bs) {
		t.Fatalf("moved bytes %d inconsistent with %d blocks", st.MovedBytes, st.MovedBlocks)
	}
}

// TestMigrationPauseResume: a pace abort leaves the cursor at the last
// committed window; the array serves I/O mid-migration; a second Run
// finishes the job.
func TestMigrationPauseResume(t *testing.T) {
	const blocks = 96
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	data := fillRandom(t, a, 11)

	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pace is only consulted for windows that moved blocks; abort at the
	// first such window, which leaves later windows uncopied.
	pauseErr := errors.New("pause")
	err = m.Run(ctx, func(ctx context.Context, bytes int) error {
		return pauseErr
	}, nil)
	if !errors.Is(err, pauseErr) {
		t.Fatalf("paused run returned %v, want pause error", err)
	}
	cursor, gen, active := a.Migrating()
	if !active || gen != 1 {
		t.Fatalf("Migrating() = %d/%d/%v after pause", cursor, gen, active)
	}
	if cursor <= 0 || cursor >= a.Blocks() {
		t.Fatalf("paused cursor %d, want strictly inside (0,%d)", cursor, a.Blocks())
	}
	// Mid-migration I/O: overwrite a block below and above the cursor.
	for _, lb := range []int64{0, cursor, a.Blocks() - 1} {
		buf := bytes.Repeat([]byte{byte(40 + lb%10)}, bs)
		if err := a.WriteBlocks(ctx, lb, buf); err != nil {
			t.Fatalf("write block %d mid-migration: %v", lb, err)
		}
		copy(data[lb*int64(bs):], buf)
		got := make([]byte, bs)
		if err := a.ReadBlocks(ctx, lb, got); err != nil {
			t.Fatalf("read block %d mid-migration: %v", lb, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("block %d read back wrong mid-migration", lb)
		}
	}
	if err := m.Run(ctx, nil, nil); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	checkContent(t, a, data, "after pause+resume")
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMigrationRestartResume models a crash mid-rebalance: the process
// restarts, reopens the array at the source epoch over the widened
// device table, and resumes from the persisted checkpoint — re-copying
// only the delta, not the whole remap.
func TestMigrationRestartResume(t *testing.T) {
	const blocks = 96
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	data := fillRandom(t, a, 13)

	newDevs := mk(8)
	m, err := a.BeginGrow(8, newDevs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt int64
	stopErr := errors.New("crash")
	err = m.Run(ctx, func(ctx context.Context, bytes int) error {
		if ckpt >= a.Blocks()/2 {
			return stopErr
		}
		return nil
	}, func(cursor int64) error { ckpt = cursor; return nil })
	if !errors.Is(err, stopErr) {
		t.Fatalf("interrupted run returned %v", err)
	}
	firstMoved := m.Status().MovedBlocks

	// "Restart": a fresh engine over the same 12 devices, positioned at
	// the source epoch, resuming from the persisted cursor.
	sourceDesc := a.Epoch().Desc()
	src, err := layout.EpochFromDesc(sourceDesc)
	if err != nil {
		t.Fatal(err)
	}
	devs := a.Devices()
	b, err := NewAtEpoch(append([]raid.Dev(nil), devs...), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.BeginGrow(8, nil, ckpt)
	if err != nil {
		t.Fatalf("resume BeginGrow: %v", err)
	}
	if err := m2.Run(ctx, nil, nil); err != nil {
		t.Fatalf("resumed migration: %v", err)
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	checkContent(t, b, data, "after restart resume")
	if err := b.Verify(ctx); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Delta resync, not a full redo: the two runs together moved the
	// minimal set plus at most one re-copied window.
	minMoves := b.Blocks() * 8 / 12
	total := firstMoved + m2.Status().MovedBlocks
	if total < minMoves || total > minMoves+migChunk {
		t.Fatalf("restart redid work: %d+%d moved, want within [%d, %d]",
			firstMoved, m2.Status().MovedBlocks, minMoves, minMoves+migChunk)
	}
}

// TestMigrationShrink: grow 4 -> 8, then shrink 8 -> 6 under live
// checks; retired columns hold no live blocks, reads survive their
// disks failing, and repair refuses to touch them.
func TestMigrationShrink(t *testing.T) {
	const blocks = 96
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	data := fillRandom(t, a, 17)

	m, err := a.BeginGrow(4, mk(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	m2, err := a.BeginShrink(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(ctx, nil, nil); err != nil {
		t.Fatalf("shrink migration: %v", err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	checkContent(t, a, data, "after shrink")
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after shrink: %v", err)
	}
	for _, idx := range []int{6, 7} {
		if !a.ColumnRetired(idx) {
			t.Fatalf("column %d not retired after shrink", idx)
		}
		if err := a.Rebuild(ctx, idx); !errors.Is(err, ErrRetiredColumn) {
			t.Fatalf("rebuild of retired column %d: %v, want ErrRetiredColumn", idx, err)
		}
	}
	if a.ColumnRetired(0) || a.ColumnRetired(5) {
		t.Fatal("live column reported retired")
	}
	// Retired disks hold nothing the array needs.
	for _, d := range a.Devices()[6:8] {
		d.(*disk.Disk).Fail()
	}
	checkContent(t, a, data, "after failing retired disks")
}

// TestMigrationExclusion: while a migration is in flight, rebuilds,
// resyncs, scrubs, and a second membership change all refuse with
// typed errors.
func TestMigrationExclusion(t *testing.T) {
	const blocks = 96
	il := intent.NewLog(12, blocks, 8)
	a, _, mk := migArray(t, 4, 1, blocks, Options{Intent: il})
	ctx := context.Background()
	fillRandom(t, a, 19)

	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(ctx, 0); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("rebuild during migration: %v, want ErrMigrationActive", err)
	}
	if _, err := a.Resync(ctx, 0, []intent.Region{{Start: 0, Count: 8}}, nil); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("resync during migration: %v, want ErrMigrationActive", err)
	}
	if _, err := a.ScrubSample(ctx, 0, 0, nil); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("scrub during migration: %v, want ErrMigrationActive", err)
	}
	if _, err := a.BeginGrow(1, nil, 0); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("second grow during migration: %v, want ErrMigrationActive", err)
	}
	if _, err := a.BeginShrink(1, 0); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("shrink during migration: %v, want ErrMigrationActive", err)
	}
	if err := m.Run(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationSourceFailover: a node killed mid-rebalance must not
// stall the migration — the copier reads the surviving copy of every
// block whose primary source is down.
func TestMigrationSourceFailover(t *testing.T) {
	const blocks = 96
	a, raw, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	data := fillRandom(t, a, 23)

	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a source node's disk before any window copies.
	raw[1].Fail()
	if err := m.Run(ctx, nil, nil); err != nil {
		t.Fatalf("migration with a dead source: %v", err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// All data remains readable: moved blocks were copied from the
	// mirror images, unmoved blocks on the dead disk read degraded.
	checkContent(t, a, data, "after grow with dead source")
}

// TestMigrationGrowVclockDeterministic runs the 4 -> 12 grow drill
// under the virtual clock: foreground writes interleave with the
// copier at its pace points (the window is closed there, so a
// simulated proc cannot wedge on the window's condvar), which makes
// the schedule reproducible run to run. Every write must succeed,
// the writes land on both sides of the advancing cursor so both epoch
// routing paths serve I/O mid-migration, content and redundancy must
// verify at the new epoch, and the move count must stay within the
// minimal-movement bound.
func TestMigrationGrowVclockDeterministic(t *testing.T) {
	const blocks = 96
	s := vclock.New()
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 64e6, PerRequest: 50 * time.Microsecond}
	mkSim := func(first, n int) []raid.Dev {
		out := make([]raid.Dev, n)
		for i := range out {
			out[i] = disk.New(s, fmt.Sprintf("d%d", first+i), store.NewMem(bs, blocks), model)
		}
		return out
	}
	a, err := New(mkSim(0, 4), 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	newDevs := mkSim(4, 8)

	var (
		shadow     []byte
		moved      int64
		lowWrites  int // writes below the cursor: already-migrated homes
		highWrites int // writes above it: old homes under the source map
	)
	s.Spawn("migrator", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		shadow = make([]byte, a.Blocks()*int64(bs))
		rand.New(rand.NewSource(41)).Read(shadow)
		if err := a.WriteBlocks(ctx, 0, shadow); err != nil {
			t.Error(err)
			return
		}
		if err := a.Flush(ctx); err != nil {
			t.Error(err)
			return
		}
		m, err := a.BeginGrow(8, newDevs, 0)
		if err != nil {
			t.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(43))
		buf := make([]byte, bs)
		pace := func(ctx context.Context, bytes int) error {
			p.Sleep(250 * time.Microsecond)
			cursor, _, _ := a.Migrating()
			for i := 0; i < 8; i++ {
				lb := rng.Int63n(a.Blocks())
				if lb < cursor {
					lowWrites++
				} else {
					highWrites++
				}
				rng.Read(buf)
				if err := a.WriteBlocks(ctx, lb, buf); err != nil {
					t.Errorf("foreground write at block %d (cursor %d): %v", lb, cursor, err)
					return err
				}
				copy(shadow[lb*int64(bs):], buf)
			}
			return nil
		}
		if err := m.Run(ctx, pace, nil); err != nil {
			t.Errorf("migration run: %v", err)
			return
		}
		moved = m.Status().MovedBlocks
		if err := a.Flush(ctx); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	ctx := context.Background()
	if got := a.Epoch().Gen(); got != 1 {
		t.Fatalf("epoch generation %d after grow, want 1", got)
	}
	if lowWrites == 0 || highWrites == 0 {
		t.Fatalf("writes did not straddle the cursor (%d below, %d above)", lowWrites, highWrites)
	}
	checkContent(t, a, shadow, "after vclock grow")
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after vclock grow: %v", err)
	}
	minMoves := a.Blocks() * 8 / 12
	if moved < minMoves || moved > minMoves+minMoves/4 {
		t.Fatalf("moved %d blocks, want within [%d, %d]", moved, minMoves, minMoves+minMoves/4)
	}
}

// TestRebuildAndResyncUnderEpoch: after a completed grow the layout is
// override-driven; a swapped disk must rebuild by the epoch's inverse
// maps, and a flapped disk must delta-resync the same way.
func TestRebuildAndResyncUnderEpoch(t *testing.T) {
	const blocks = 96
	il := intent.NewLog(12, blocks, 8)
	a, raw, mk := migArray(t, 4, 1, blocks, Options{Intent: il})
	ctx := context.Background()
	data := fillRandom(t, a, 29)

	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Swap-and-rebuild a base disk that both donated data and holds
	// mirror groups.
	spare := disk.New(nil, "spare0", store.NewMem(bs, blocks), disk.DefaultModel())
	if _, err := a.SwapDev(0, spare); err != nil {
		t.Fatal(err)
	}
	prog := &RebuildProgress{}
	if err := a.RebuildFrom(ctx, 0, prog, nil); err != nil {
		t.Fatalf("epoched rebuild: %v", err)
	}
	if prog.Epoch != a.Epoch().Gen() {
		t.Fatalf("rebuild checkpoint epoch %d, want %d", prog.Epoch, a.Epoch().Gen())
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after epoched rebuild: %v", err)
	}
	checkContent(t, a, data, "after epoched rebuild")

	// Flap another disk through writes, then delta-resync it.
	victim := 2
	raw[victim].Fail()
	buf := bytes.Repeat([]byte{0xEE}, 8*bs)
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(data[:len(buf)], buf)
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	raw[victim].Readmit()
	for pass := 0; ; pass++ {
		if pass > 10 {
			t.Fatal("intent log never drained")
		}
		regions := il.TakeDirty(victim)
		if len(regions) == 0 {
			break
		}
		if _, err := a.Resync(ctx, victim, regions, nil); err != nil {
			t.Fatalf("epoched resync: %v", err)
		}
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after epoched resync: %v", err)
	}
	checkContent(t, a, data, "after epoched resync")
}

// TestMigrationCheckpointBeforeCommit pins the durability ordering of
// the copy loop: for a window that moved blocks, the cursor must reach
// the checkpoint sink BEFORE the engine publishes it. Foreground
// writes route to new-epoch homes as soon as the published cursor
// covers them, and a crash-resume re-copies old homes from the durable
// cursor on — so a publish ahead of the durable record would let a
// resume silently overwrite acknowledged writes.
func TestMigrationCheckpointBeforeCommit(t *testing.T) {
	const blocks = 96
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	fillRandom(t, a, 31)

	from := a.Epoch()
	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	to := m.TargetEpoch()
	var prevHi int64
	movedWindows := 0
	err = m.Run(ctx, nil, func(hi int64) error {
		lo := prevHi
		prevHi = hi
		moved := false
		for lb := lo; lb < hi; lb++ {
			if from.DataLoc(lb) != to.DataLoc(lb) || from.MirrorLoc(lb) != to.MirrorLoc(lb) {
				moved = true
				break
			}
		}
		published, _, active := a.Migrating()
		if !active {
			t.Fatalf("checkpoint for window ending %d after migration finished", hi)
		}
		if moved {
			movedWindows++
			if published >= hi {
				t.Fatalf("cursor %d published before the checkpoint for window ending %d was durable", published, hi)
			}
		} else if published != hi {
			t.Fatalf("zero-move window ending %d checkpointed at published cursor %d", hi, published)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if movedWindows == 0 {
		t.Fatal("grow moved no windows; ordering never exercised")
	}
}

// TestMigrationResumeFromDurableCursorKeepsWrites is the lost-update
// regression for a coordinator crash: resume restarts from the durable
// cursor, while foreground writes route by the published one. A write
// the published cursor routed to its new home must survive the resumed
// run's re-copy of everything above the durable cursor — which holds
// only because the two cursors agree wherever blocks moved.
func TestMigrationResumeFromDurableCursorKeepsWrites(t *testing.T) {
	const blocks = 96
	a, _, mk := migArray(t, 4, 1, blocks, Options{})
	ctx := context.Background()
	shadow := fillRandom(t, a, 37)

	fromDesc := a.Epoch().Desc()
	m, err := a.BeginGrow(8, mk(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	to := m.TargetEpoch()
	// Crash the persistence sink mid-migration: checkpoints before the
	// crash are durable, the erroring one is not.
	crashErr := errors.New("checkpoint sink crashed")
	var durable int64 = -1
	err = m.Run(ctx, nil, func(cursor int64) error {
		// Crash at the final window's checkpoint: by then moved windows
		// (minimal movement concentrates them in the tail) sit durably
		// below the cursor.
		if cursor == a.Blocks() {
			return crashErr
		}
		durable = cursor
		return nil
	})
	if !errors.Is(err, crashErr) {
		t.Fatalf("crashed run returned %v", err)
	}
	if durable < 0 {
		t.Fatal("no durable checkpoint before the crash")
	}
	published, _, active := a.Migrating()
	if !active {
		t.Fatal("migration not active after the crashed run")
	}
	// An acknowledged foreground write to the highest moved block the
	// published cursor already routes to its new home.
	src, err := layout.EpochFromDesc(fromDesc)
	if err != nil {
		t.Fatal(err)
	}
	var lb int64 = -1
	for b := published - 1; b >= 0; b-- {
		if src.DataLoc(b) != to.DataLoc(b) {
			lb = b
			break
		}
	}
	if lb < 0 {
		t.Fatal("no moved block below the published cursor")
	}
	buf := bytes.Repeat([]byte{0xA7}, bs)
	if err := a.WriteBlocks(ctx, lb, buf); err != nil {
		t.Fatal(err)
	}
	copy(shadow[lb*int64(bs):], buf)
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine over the same devices at the source
	// epoch, resuming from the DURABLE cursor — exactly what the repair
	// supervisor reloads after a crash.
	re, err := NewAtEpoch(append([]raid.Dev(nil), a.Devices()...), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := re.BeginGrow(8, nil, durable)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	checkContent(t, re, shadow, "after crash-resume from the durable cursor")
	if err := re.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}
