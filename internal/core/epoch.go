package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bufpool"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/raid"
	"repro/internal/trace"
)

// ErrMigrationActive is returned by operations that must not run while
// a layout-epoch migration is in flight: rebuilds, resyncs, scrubs, and
// a second Begin{Grow,Shrink}. The caller waits for the rebalance to
// finish (or pauses it) and retries.
var ErrMigrationActive = errors.New("core: layout migration in progress")

// ErrRetiredColumn is returned for repair operations addressed to a
// column whose node was removed by a shrink: the column holds no live
// blocks and will never be rebuilt.
var ErrRetiredColumn = errors.New("core: column retired by shrink")

// epochState is the engine's layout view, published through an atomic
// pointer with the same copy-on-write discipline as the device table:
// an operation loads it once and every placement decision inside that
// operation is consistent. During a migration the state carries both
// layouts and the cursor; each committed copy window publishes a fresh
// value, never mutates an old one.
type epochState struct {
	// cur is the authoritative layout for blocks at or above cursor
	// (and for everything once the migration ends).
	cur *layout.Epoch
	// next is the migration target layout, nil when no migration is in
	// flight. Blocks below cursor have already moved and live at their
	// next-layout homes.
	next   *layout.Epoch
	cursor int64
	// mig is the migration owning next/cursor; writers use it to keep
	// out of the active copy window.
	mig *Migration
}

// plain reports whether the fast arithmetic paths apply: no overrides,
// no migration.
func (s *epochState) plain() bool { return s.next == nil && s.cur.Trivial() }

// dataLoc places block b under this view: migrated blocks by the target
// layout, the rest by the current one.
func (s *epochState) dataLoc(b int64) layout.Loc {
	if s.next != nil && b < s.cursor {
		return s.next.DataLoc(b)
	}
	return s.cur.DataLoc(b)
}

// mirrorLoc places block b's image under this view.
func (s *epochState) mirrorLoc(b int64) layout.Loc {
	if s.next != nil && b < s.cursor {
		return s.next.MirrorLoc(b)
	}
	return s.cur.MirrorLoc(b)
}

// Epoch returns the current stable layout epoch. During a migration
// this is still the source epoch — the target becomes current only
// when the last block has moved.
func (a *RAIDx) Epoch() *layout.Epoch { return a.epoch.Load().cur }

// Migrating reports whether a layout migration is in flight, and if so
// its cursor (first block not yet migrated) and target generation.
func (a *RAIDx) Migrating() (cursor int64, targetGen uint64, active bool) {
	es := a.epoch.Load()
	if es.next == nil {
		return 0, 0, false
	}
	return es.cursor, es.next.Gen(), true
}

// ColumnRetired reports whether column i was retired by a shrink. The
// repair supervisor skips retired columns in its health scan.
func (a *RAIDx) ColumnRetired(i int) bool {
	es := a.epoch.Load()
	return i < es.cur.Width() && !es.cur.Active(i)
}

// NewAtEpoch builds a RAID-x array positioned at a prior layout epoch —
// the reopen path after a restart (possibly mid-migration: pass the
// stable source epoch, then resume with BeginGrow/BeginShrink). devs
// must cover at least ep.Width() columns; extra trailing devices are
// idle until a grow targets them. Retired columns may be nil.
func NewAtEpoch(devs []raid.Dev, ep *layout.Epoch, opt Options) (*RAIDx, error) {
	if ep == nil {
		return nil, fmt.Errorf("core: nil epoch")
	}
	if len(devs) < ep.Width() {
		return nil, fmt.Errorf("core: %d devices for an epoch of width %d", len(devs), ep.Width())
	}
	base := ep.Base()
	live := make([]raid.Dev, 0, len(devs))
	for i, d := range devs {
		if d == nil {
			if i < ep.Width() && ep.Active(i) {
				return nil, fmt.Errorf("core: active column %d has no device", i)
			}
			continue
		}
		live = append(live, d)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	bs, per, err := checkDevs(live)
	if err != nil {
		return nil, err
	}
	if per%2 != 0 {
		per--
	}
	if per < base.DiskBlocks {
		return nil, fmt.Errorf("core: devices hold %d blocks, epoch geometry needs %d", per, base.DiskBlocks)
	}
	a := &RAIDx{
		lay:    base,
		bs:     bs,
		opt:    opt,
		met:    newCoreMetrics(opt.Obs),
		tracer: opt.Trace,
		intLog: opt.Intent,
	}
	a.setColNames(len(devs))
	owned := append([]raid.Dev(nil), devs...)
	a.table.Store(&owned)
	a.epoch.Store(&epochState{cur: ep})
	a.intLog.Grow(len(devs))
	return a, nil
}

// rebuildEpochFrom recovers a replaced disk under a non-trivial layout
// epoch. The arithmetic rebuild's column/group walk no longer matches
// the overridden placements, so this path scans the disk's physical
// blocks and inverts each through the epoch's source maps: the data
// half is still a contiguous prefix of logical blocks, the mirror half
// the base slot window plus relocated images. Progress counts physical
// blocks per half (Epoch records the generation; a checkpoint from
// another generation is discarded).
func (a *RAIDx) rebuildEpochFrom(ctx context.Context, idx int, ep *layout.Epoch, prog *RebuildProgress, pace PaceFunc) (err error) {
	devs := a.devices()
	blank := a.blankCols.Load()
	ctx, root := a.tracer.StartRoot(ctx, "raidx.rebuild", a.col(idx))
	defer func() { root.End(err) }()
	subject := fmt.Sprintf("raidx/d%d", idx)
	if prog.Epoch != ep.Gen() {
		*prog = RebuildProgress{Epoch: ep.Gen()}
	}
	detail := fmt.Sprintf("epoch %d scan", ep.Gen())
	if prog.DataDone > 0 || prog.GroupsDone > 0 {
		detail += fmt.Sprintf(", resume data=%d mirror=%d", prog.DataDone, prog.GroupsDone)
	}
	a.met.events.Append(obs.EventRebuildStart, subject, detail)
	defer func() {
		detail := "ok"
		if err != nil {
			detail = err.Error()
		}
		a.met.events.Append(obs.EventRebuildEnd, subject, detail)
	}()
	half := a.lay.DiskBlocks / 2
	prog.DataTotal, prog.GroupsTotal = half, half
	a.rebuildTotal.Store(2 * half)
	a.rebuildDone.Store(prog.DataDone + prog.GroupsDone)
	buf := bufpool.Get(rebuildChunk * a.bs)
	defer bufpool.Put(buf)
	valid := make([]bool, rebuildChunk)
	// copyHalf recovers physical blocks [base+done, base+half) of idx,
	// inverting each through source and reading the peer copy.
	copyHalf := func(base int64, done *int64, source func(int64) (int64, bool), peer func(int64) layout.Loc) error {
		start := *done - *done%rebuildChunk // re-copy a partial chunk; trusting it needs proof
		for c := start; c < half; c += rebuildChunk {
			n := half - c
			if n > rebuildChunk {
				n = rebuildChunk
			}
			err := par.ForEach(ctx, int(n), func(ctx context.Context, t int) error {
				pb := base + c + int64(t)
				lb, ok := source(pb)
				valid[t] = ok
				if !ok {
					return nil
				}
				src := peer(lb)
				if !readable(devs, blank, src.Disk) {
					return fmt.Errorf("core: surviving copy of block %d unavailable during rebuild: %w", lb, raid.ErrDataLoss)
				}
				return devs[src.Disk].ReadBlocks(ctx, src.Block, buf[t*a.bs:(t+1)*a.bs])
			})
			if err != nil {
				return err
			}
			for t := int64(0); t < n; {
				if !valid[t] {
					t++
					continue
				}
				run := t
				for run < n && valid[run] {
					run++
				}
				if err := devs[idx].WriteBlocks(ctx, base+c+t, buf[t*int64(a.bs):run*int64(a.bs)]); err != nil {
					return err
				}
				t = run
			}
			*done = c + n
			a.rebuildDone.Store(prog.DataDone + prog.GroupsDone)
			if pace != nil {
				if err := pace(ctx, int(n)*a.bs); err != nil {
					return err
				}
			}
		}
		*done = half
		return nil
	}
	if err := copyHalf(0, &prog.DataDone,
		func(pb int64) (int64, bool) { return ep.DataSource(idx, pb) },
		ep.MirrorLoc); err != nil {
		return err
	}
	if err := copyHalf(half, &prog.GroupsDone,
		func(pb int64) (int64, bool) { return ep.MirrorSource(idx, pb) },
		ep.DataLoc); err != nil {
		return err
	}
	a.intLog.ClearDev(idx)
	a.setBlank(idx, false)
	return nil
}

// physSpan is one physically contiguous run on one disk, carrying the
// logical blocks it covers in physical order.
type physSpan struct {
	disk int
	phys int64   // first physical block
	lbs  []int64 // logical block per physical slot
}

// locEntry pairs a logical block with its physical home under a view.
type locEntry struct {
	lb  int64
	loc layout.Loc
}

// spansOf groups located blocks into physically contiguous per-disk
// runs. Blocks of one donor column migrate to consecutive receiver
// offsets, so epoched placements still coalesce into long runs.
func spansOf(ents []locEntry) []physSpan {
	byDisk := map[int][]locEntry{}
	for _, e := range ents {
		byDisk[e.loc.Disk] = append(byDisk[e.loc.Disk], e)
	}
	var spans []physSpan
	for disk, list := range byDisk {
		sort.Slice(list, func(i, j int) bool { return list[i].loc.Block < list[j].loc.Block })
		for i := 0; i < len(list); {
			j := i + 1
			for j < len(list) && list[j].loc.Block == list[j-1].loc.Block+1 {
				j++
			}
			sp := physSpan{disk: disk, phys: list[i].loc.Block}
			for _, e := range list[i:j] {
				sp.lbs = append(sp.lbs, e.lb)
			}
			spans = append(spans, sp)
			i = j
		}
	}
	return spans
}

// readEpoch is the general read path for epoched arrays: per-view
// placement, vectored reads over coalesced physical runs, per-block
// mirror failover. It trades the arithmetic fast path's zero-alloc
// guarantee for correctness under arbitrary remaps.
func (a *RAIDx) readEpoch(ctx context.Context, es *epochState, b int64, n int, p []byte) error {
	devs := a.devices()
	blank := a.blankCols.Load()
	ents := make([]locEntry, n)
	for t := 0; t < n; t++ {
		lb := b + int64(t)
		ents[t] = locEntry{lb: lb, loc: es.dataLoc(lb)}
	}
	seg := func(lb int64) []byte {
		return p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
	}
	var fns []func(context.Context) error
	for _, sp := range spansOf(ents) {
		sp := sp
		if !readable(devs, blank, sp.disk) {
			// Degraded: serve each block from its image.
			for _, lb := range sp.lbs {
				lb := lb
				fns = append(fns, func(ctx context.Context) error {
					a.met.degradedReads.Inc()
					if a.degradedNotify != nil {
						a.degradedNotify(1)
					}
					return a.readViaImage(ctx, es, devs, blank, lb, seg(lb), nil)
				})
			}
			continue
		}
		fns = append(fns, func(ctx context.Context) (err error) {
			ctx, ch := trace.Start(ctx, "raidx.col-read", a.col(sp.disk))
			ch.Val = int64(len(sp.lbs) * a.bs)
			defer func() { ch.End(err) }()
			segs := make([][]byte, len(sp.lbs))
			for i, lb := range sp.lbs {
				segs[i] = seg(lb)
			}
			rerr := raid.ReadBlocksVec(ctx, devs[sp.disk], sp.phys, segs)
			if rerr == nil || ctx.Err() != nil {
				return rerr
			}
			a.noteFailover(fmt.Sprintf("raidx/d%d", sp.disk), rerr)
			for _, lb := range sp.lbs {
				if err := a.readViaImage(ctx, es, devs, blank, lb, seg(lb), rerr); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return par.Do(ctx, fns...)
}

// readViaImage serves one block from its mirror image under the view.
func (a *RAIDx) readViaImage(ctx context.Context, es *epochState, devs []raid.Dev, blank uint64, lb int64, dst []byte, cause error) error {
	m := es.mirrorLoc(lb)
	if !readable(devs, blank, m.Disk) {
		if cause != nil {
			return fmt.Errorf("core: block %d primary failed (%v) and image unavailable: %w", lb, cause, raid.ErrDataLoss)
		}
		return fmt.Errorf("core: block %d and its image both unavailable: %w", lb, raid.ErrDataLoss)
	}
	err := devs[m.Disk].ReadBlocks(ctx, m.Block, dst)
	if err != nil && cause != nil {
		return fmt.Errorf("core: block %d primary failed (%v), image read failed: %w", lb, cause, err)
	}
	return err
}

// writeEpoch is the general write path for epoched arrays. It first
// synchronizes with any in-flight migration: the write waits out a copy
// window overlapping its range, then registers itself so the copier
// cannot open such a window until it lands — the lost-update guard that
// keeps "zero foreground errors" honest under live rebalance.
func (a *RAIDx) writeEpoch(ctx context.Context, b int64, n int, p []byte) error {
	es := a.epoch.Load()
	if m := es.mig; m != nil {
		if m.enterWrite(b, int64(n)) {
			defer m.exitWrite(b, int64(n))
		}
		// The cursor for [b, b+n) is now pinned: reload the view the
		// copier may have advanced while we waited.
		es = a.epoch.Load()
	}
	devs := a.devices()
	for lb := b; lb < b+int64(n); lb++ {
		if !devs[es.dataLoc(lb).Disk].Healthy() && !devs[es.mirrorLoc(lb).Disk].Healthy() {
			return fmt.Errorf("core: block %d has no healthy copy location: %w", lb, raid.ErrDataLoss)
		}
	}
	seg := func(lb int64) []byte {
		return p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
	}
	ents := make([]locEntry, n)
	for t := 0; t < n; t++ {
		lb := b + int64(t)
		ents[t] = locEntry{lb: lb, loc: es.dataLoc(lb)}
	}
	var fns []func(context.Context) error
	for _, sp := range spansOf(ents) {
		sp := sp
		dev := devs[sp.disk]
		if a.opt.IntentAhead {
			a.intLog.MarkRange(sp.disk, sp.phys, int64(len(sp.lbs)))
		}
		if !dev.Healthy() {
			a.intLog.MarkRange(sp.disk, sp.phys, int64(len(sp.lbs)))
			continue
		}
		fns = append(fns, func(ctx context.Context) (err error) {
			ctx, ch := trace.Start(ctx, "raidx.col-write", a.col(sp.disk))
			ch.Val = int64(len(sp.lbs) * a.bs)
			defer func() { ch.End(err) }()
			segs := make([][]byte, len(sp.lbs))
			for i, lb := range sp.lbs {
				segs[i] = seg(lb)
			}
			err = raid.WriteBlocksVec(ctx, dev, sp.phys, segs)
			if err != nil {
				a.intLog.MarkRange(sp.disk, sp.phys, int64(len(sp.lbs)))
			}
			return err
		})
	}
	// Image writes: coalesce physically contiguous runs whose payload is
	// also contiguous in p (consecutive logical blocks), so group-packed
	// images still go out as one long deferred write.
	for t := 0; t < n; t++ {
		lb := b + int64(t)
		ents[t] = locEntry{lb: lb, loc: es.mirrorLoc(lb)}
	}
	for _, sp := range spansOf(ents) {
		sp := sp
		dev := devs[sp.disk]
		// Deferred mirror writes travel as background notifications, and
		// a remote node's epoch fence may drop a stale one with no error
		// coming back — mark the intent up front so the divergence stays
		// visible for delta resync instead of being a silent redundancy
		// loss.
		if a.opt.IntentAhead || !a.opt.ForegroundMirror {
			a.intLog.MarkRange(sp.disk, sp.phys, int64(len(sp.lbs)))
		}
		if !dev.Healthy() {
			a.intLog.MarkRange(sp.disk, sp.phys, int64(len(sp.lbs)))
			continue
		}
		// Split the physical run wherever the logical blocks are not
		// consecutive: background writes need one flat buffer.
		for i := 0; i < len(sp.lbs); {
			j := i + 1
			if !a.opt.ScatterMirror {
				for j < len(sp.lbs) && sp.lbs[j] == sp.lbs[j-1]+1 {
					j++
				}
			}
			lo, phys := sp.lbs[i], sp.phys+int64(i)
			count := int64(j - i)
			fns = append(fns, func(ctx context.Context) (err error) {
				ctx, mh := trace.Start(ctx, "raidx.mirror-write", a.col(sp.disk))
				mh.Val = count * int64(a.bs)
				defer func() { mh.End(err) }()
				chunk := p[(lo-b)*int64(a.bs) : (lo-b+count)*int64(a.bs)]
				if a.opt.ForegroundMirror {
					err = dev.WriteBlocks(ctx, phys, chunk)
				} else {
					err = dev.WriteBlocksBackground(ctx, phys, chunk)
				}
				if err != nil {
					a.intLog.MarkRange(sp.disk, phys, count)
				}
				return err
			})
			i = j
		}
	}
	return par.Do(ctx, fns...)
}
