package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/raid"
	"repro/internal/store"
)

// intentArray builds a RAID-x over instant mem disks with a write-intent
// log attached, returning the array, the raw disks, and the log.
func intentArray(t *testing.T, nodes, k int, blocks int64, regionBlocks int64) (*RAIDx, []*disk.Disk, *intent.Log) {
	t.Helper()
	devs := make([]raid.Dev, nodes*k)
	raw := make([]*disk.Disk, nodes*k)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	il := intent.NewLog(nodes*k, blocks, regionBlocks)
	a, err := New(devs, nodes, k, Options{Intent: il})
	if err != nil {
		t.Fatal(err)
	}
	return a, raw, il
}

// TestResyncSourceMapping: the physical→logical inverse must agree with
// the layout's forward maps on every geometry — each logical block's two
// locations resolve back to it, and physical blocks nothing maps to are
// reported not-ok.
func TestResyncSourceMapping(t *testing.T) {
	for _, g := range []struct {
		n, k   int
		blocks int64
	}{
		{2, 1, 12}, {3, 1, 16}, {4, 1, 30}, {4, 2, 24}, {5, 3, 60}, {8, 2, 95},
	} {
		devs := make([]raid.Dev, g.n*g.k)
		for i := range devs {
			devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, g.blocks), disk.DefaultModel())
		}
		a, err := New(devs, g.n, g.k, Options{})
		if err != nil {
			t.Fatalf("%dx%d: %v", g.n, g.k, err)
		}
		lay := a.Layout()
		// Forward: every logical block's data and mirror locations must
		// invert to that block.
		for lb := int64(0); lb < a.Blocks(); lb++ {
			for _, loc := range []struct {
				disk  int
				block int64
			}{
				{lay.DataLoc(lb).Disk, lay.DataLoc(lb).Block},
				{lay.MirrorLoc(lb).Disk, lay.MirrorLoc(lb).Block},
			} {
				got, ok := a.resyncSource(loc.block, loc.disk)
				if !ok || got != lb {
					t.Fatalf("%dx%d/%d: resyncSource(%d, d%d) = %d,%v, want %d",
						g.n, g.k, g.blocks, loc.block, loc.disk, got, ok, lb)
				}
			}
		}
		// Inverse: each physical block maps to at most one logical block,
		// and the mapped ones are exactly 2·Blocks() across the array.
		mapped := int64(0)
		for idx := 0; idx < g.n*g.k; idx++ {
			for pb := int64(0); pb < g.blocks; pb++ {
				if lb, ok := a.resyncSource(pb, idx); ok {
					mapped++
					d, m := lay.DataLoc(lb), lay.MirrorLoc(lb)
					if !(d.Disk == idx && d.Block == pb) && !(m.Disk == idx && m.Block == pb) {
						t.Fatalf("%dx%d: resyncSource(%d, d%d) = %d but block lives elsewhere",
							g.n, g.k, pb, idx, lb)
					}
				}
			}
		}
		if mapped != 2*a.Blocks() {
			t.Fatalf("%dx%d/%d: %d physical blocks mapped, want %d",
				g.n, g.k, g.blocks, mapped, 2*a.Blocks())
		}
	}
}

// TestRepairRebuildResume: a rebuild aborted by its pace function keeps
// a checkpoint; resuming from it finishes without redoing the work
// already landed, and the progress gauges track it.
func TestRepairRebuildResume(t *testing.T) {
	a, raw, _ := intentArray(t, 4, 1, 800, 0)
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(bs))
	rand.New(rand.NewSource(31)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	const victim = 2
	// Baseline: count the device writes of an uninterrupted rebuild.
	raw[victim].Fail()
	if err := raw[victim].Replace(); err != nil {
		t.Fatal(err)
	}
	_, w0, _, _ := raw[victim].Stats()
	if err := a.Rebuild(ctx, victim); err != nil {
		t.Fatal(err)
	}
	_, w1, _, _ := raw[victim].Stats()
	fullWrites := w1 - w0
	if err := a.Verify(ctx); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the pace hook aborts after abortAfter landed
	// chunks (RebuildFrom paces once per landed write).
	raw[victim].Fail()
	if err := raw[victim].Replace(); err != nil {
		t.Fatal(err)
	}
	errPaused := errors.New("paused")
	abortAfter := int(fullWrites) / 2
	calls := 0
	var prog RebuildProgress
	err := a.RebuildFrom(ctx, victim, &prog, func(ctx context.Context, bytes int) error {
		calls++
		if calls >= abortAfter {
			return errPaused
		}
		return nil
	})
	if !errors.Is(err, errPaused) {
		t.Fatalf("interrupted rebuild returned %v, want pause error", err)
	}
	if prog.DataDone == 0 && prog.GroupsDone == 0 {
		t.Fatal("no checkpoint recorded before the abort")
	}
	_, w2, _, _ := raw[victim].Stats()

	// Resume from the checkpoint: the second run must do at most the
	// remaining work (plus one re-copied boundary chunk), not start over.
	if err := a.RebuildFrom(ctx, victim, &prog, nil); err != nil {
		t.Fatal(err)
	}
	_, w3, _, _ := raw[victim].Stats()
	resumeWrites := w3 - w2
	if want := fullWrites - int64(abortAfter) + 2; resumeWrites > want {
		t.Fatalf("resume did %d writes, want <= %d (full rebuild is %d)", resumeWrites, want, fullWrites)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after resumed rebuild: %v", err)
	}
	if done, total := a.rebuildDone.Load(), a.rebuildTotal.Load(); total == 0 || done != total {
		t.Fatalf("progress gauges %d/%d after completion", done, total)
	}
	if prog.DataDone != prog.DataTotal || prog.GroupsDone != prog.GroupsTotal {
		t.Fatalf("checkpoint %+v not complete", prog)
	}
}

// TestResyncDeltaOnlyTransfersDirty: writes landed while a device was
// down are intent-logged; after readmission a delta resync moves only
// the dirty regions — a small fraction of the device — and restores full
// redundancy.
func TestResyncDeltaOnlyTransfersDirty(t *testing.T) {
	const blocks = 800
	a, raw, il := intentArray(t, 4, 1, blocks, 8)
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(bs))
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	raw[victim].Fail()
	// A handful of degraded writes: some hit the victim's data column,
	// some its mirror groups; every skipped copy must be intent-logged.
	for i := 0; i < 10; i++ {
		lb := rng.Int63n(a.Blocks())
		buf := make([]byte, bs)
		rng.Read(buf)
		if err := a.WriteBlocks(ctx, lb, buf); err != nil {
			t.Fatal(err)
		}
		copy(data[lb*int64(bs):], buf)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if !il.AnyDirty() {
		t.Fatal("degraded writes left no intents")
	}
	// The device returns with stale contents (not blank).
	raw[victim].Readmit()
	st, err := a.Resync(ctx, victim, il.TakeDirty(victim), nil)
	if err != nil {
		t.Fatal(err)
	}
	deviceBytes := int64(blocks) * int64(bs)
	if st.BytesCopied == 0 || st.BytesCopied >= deviceBytes/4 {
		t.Fatalf("resync copied %d bytes, want a small fraction of the %d-byte device", st.BytesCopied, deviceBytes)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after delta resync: %v", err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data diverged after delta resync")
	}
	// A sampled scrub of the readmitted device finds nothing left to fix.
	sc, err := a.ScrubSample(ctx, victim, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.BlocksChecked == 0 || sc.Mismatches != 0 {
		t.Fatalf("scrub checked %d blocks, %d mismatches; want >0 checked, 0 mismatches", sc.BlocksChecked, sc.Mismatches)
	}
}

// TestResyncReadmitRace: writes racing a device's suspect→healthy flaps
// must never be lost — each write either reaches both copies or leaves
// an intent, so resync-until-clean restores full redundancy. Run under
// -race (CI repair shard does).
func TestResyncReadmitRace(t *testing.T) {
	const blocks = 400
	a, raw, il := intentArray(t, 4, 1, blocks, 8)
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(bs))
	rand.New(rand.NewSource(5)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	const victim = 3
	shadow := make([]byte, len(data))
	copy(shadow, data)
	var shadowMu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: each owns a disjoint block range and retries every write
	// until it succeeds, so the final content of each block is known.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			span := a.Blocks() / 4
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lb := int64(w)*span + rng.Int63n(span)
				buf := make([]byte, bs)
				rng.Read(buf)
				for {
					if err := a.WriteBlocks(ctx, lb, buf); err == nil {
						break
					}
				}
				shadowMu.Lock()
				copy(shadow[lb*int64(bs):], buf)
				shadowMu.Unlock()
			}
		}()
	}
	// The victim flaps: offline, back with stale data, offline again —
	// the readmit-races-degraded-write window over and over.
	for flap := 0; flap < 25; flap++ {
		raw[victim].Fail()
		raw[victim].Readmit()
	}
	close(stop)
	wg.Wait()
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Resync until the log is clean: writes that raced a flap may mark
	// new regions while an earlier resync is draining them.
	for pass := 0; ; pass++ {
		if pass > 20 {
			t.Fatal("intent log never drained")
		}
		regions := il.TakeDirty(victim)
		if len(regions) == 0 {
			break
		}
		if _, err := a.Resync(ctx, victim, regions, nil); err != nil {
			for _, r := range regions {
				il.MarkRange(victim, r.Start, r.Count)
			}
			t.Fatalf("resync pass %d: %v", pass, err)
		}
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after flap storm + resync: %v", err)
	}
	got := make([]byte, len(shadow))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("a write raced a readmit and was lost")
	}
}
