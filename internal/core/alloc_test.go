package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/race"
	"repro/internal/raid"
	"repro/internal/store"
)

// allocLimit runs f and fails if it averages more than limit heap
// allocations per run. The devices are local in-memory disks, so these
// limits pin the engine's own bookkeeping: closure fan-out and gather
// lists, with no staging copies of the data itself.
func allocLimit(t *testing.T, limit float64, f func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	got := testing.AllocsPerRun(100, f)
	t.Logf("%.1f allocs/op (limit %.0f)", got, limit)
	if got > limit {
		t.Errorf("%.1f allocs/op, want <= %.0f", got, limit)
	}
}

func allocArray(t *testing.T) *RAIDx {
	t.Helper()
	devs := make([]raid.Dev, 12)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(32<<10, 512), disk.DefaultModel())
	}
	a, err := New(devs, 12, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAllocsWriteStripe pins a full-stripe write: per-column gather
// lists come from the pool, so the per-op cost is the closure fan-out
// and par.Do bookkeeping — independent of the stripe's byte size.
func TestAllocsWriteStripe(t *testing.T) {
	a := allocArray(t)
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	allocLimit(t, 60, func() {
		if err := a.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsReadStripe pins a full-stripe read: blocks scatter straight
// into the caller's buffer, no staging buffer per column.
func TestAllocsReadStripe(t *testing.T) {
	a := allocArray(t)
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	allocLimit(t, 50, func() {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsWriteSmall pins the paper's small-write case: one block,
// one data write plus one deferred image write.
func TestAllocsWriteSmall(t *testing.T) {
	a := allocArray(t)
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	allocLimit(t, 20, func() {
		if err := a.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}
