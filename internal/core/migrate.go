package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/raid"
)

// migChunk is the copy-window size in logical blocks: the granularity
// at which the migration cursor advances, foreground writes are gated,
// and checkpoints are cut. Small enough that a gated write waits one
// window's worth of copying at most.
const migChunk = 64

// blkRange is a half-open range of logical blocks.
type blkRange struct{ lo, hi int64 }

func overlaps(a, b blkRange) bool { return a.lo < b.hi && b.lo < a.hi }

// MigrateStatus is a point-in-time snapshot of a migration.
type MigrateStatus struct {
	FromGen     uint64           `json:"from_gen"`
	ToGen       uint64           `json:"to_gen"`
	Cursor      int64            `json:"cursor"`
	Blocks      int64            `json:"blocks"`
	MovedBlocks int64            `json:"moved_blocks"`
	MovedBytes  int64            `json:"moved_bytes"`
	Done        bool             `json:"done"`
	Target      layout.EpochDesc `json:"target"`
}

// Migration is one in-flight layout-epoch transition. It is created by
// BeginGrow/BeginShrink and driven by Run — typically from the repair
// supervisor as a paced, checkpointed background job. Run may be
// interrupted (context cancel, pace error) and called again: the
// cursor persists in the engine's published epoch state, so a resumed
// run re-copies at most the uncommitted window.
type Migration struct {
	a        *RAIDx
	from, to *layout.Epoch

	mu           sync.Mutex
	cond         *sync.Cond
	winLo, winHi int64 // active copy window (logical blocks); equal = none
	inflight     []blkRange
	finished     bool
	running      bool

	movedBlocks atomic.Int64
	movedBytes  atomic.Int64
}

// Status snapshots the migration.
func (m *Migration) Status() MigrateStatus {
	cursor, _, active := m.a.Migrating()
	m.mu.Lock()
	done := m.finished
	m.mu.Unlock()
	if !active && done {
		cursor = m.a.Blocks()
	}
	return MigrateStatus{
		FromGen:     m.from.Gen(),
		ToGen:       m.to.Gen(),
		Cursor:      cursor,
		Blocks:      m.a.Blocks(),
		MovedBlocks: m.movedBlocks.Load(),
		MovedBytes:  m.movedBytes.Load(),
		Done:        done,
		Target:      m.to.Desc(),
	}
}

// TargetEpoch returns the layout this migration is moving to.
func (m *Migration) TargetEpoch() *layout.Epoch { return m.to }

// enterWrite blocks while the copy window overlaps [b, b+n), then
// registers the write so the copier cannot open such a window until
// exitWrite. Returns false (without registering) once the migration
// has finished — the caller just proceeds on the final layout.
func (m *Migration) enterWrite(b, n int64) bool {
	r := blkRange{b, b + n}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.finished {
			return false
		}
		if !overlaps(r, blkRange{m.winLo, m.winHi}) {
			m.inflight = append(m.inflight, r)
			return true
		}
		m.cond.Wait()
	}
}

// exitWrite deregisters a foreground write.
func (m *Migration) exitWrite(b, n int64) {
	r := blkRange{b, b + n}
	m.mu.Lock()
	for i, f := range m.inflight {
		if f == r {
			m.inflight[i] = m.inflight[len(m.inflight)-1]
			m.inflight = m.inflight[:len(m.inflight)-1]
			break
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// openWindow claims [lo, hi) for copying. The window is published
// first — gating any NEW overlapping write — and then the copier waits
// for writes already in flight to drain. Claim-then-drain cannot
// starve: the pre-existing overlap set is finite and new arrivals
// block on the window, while drain-then-claim would wait forever under
// a steady write load.
func (m *Migration) openWindow(lo, hi int64) {
	w := blkRange{lo, hi}
	m.mu.Lock()
	m.winLo, m.winHi = lo, hi
	for {
		clear := true
		for _, f := range m.inflight {
			if overlaps(f, w) {
				clear = false
				break
			}
		}
		if clear {
			break
		}
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// commitWindow publishes cursor = hi, then releases the window. The
// publish happens before gated writers wake, so a writer that waited
// on this window reloads a view that already routes its blocks to
// their new homes. Callers must have made the cursor durable first
// when the window moved any block (see copyWindow).
func (m *Migration) commitWindow(hi int64) {
	m.a.epoch.Store(&epochState{cur: m.from, next: m.to, cursor: hi, mig: m})
	m.mu.Lock()
	m.winLo, m.winHi = 0, 0
	m.mu.Unlock()
	m.cond.Broadcast()
}

// abortWindow releases the window without advancing the cursor (copy
// error or pause mid-chunk; the committed state is untouched).
func (m *Migration) abortWindow() {
	m.mu.Lock()
	m.winLo, m.winHi = 0, 0
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Run drives the migration to completion: for each window of migChunk
// logical blocks it copies every block whose data or image home
// changes, persists the cursor through checkpoint (the repair
// supervisor writes it to stable storage), commits it, and yields to
// pace. The checkpoint lands BEFORE the commit publishes the cursor:
// foreground writes route to new-epoch homes only at or below the
// durable cursor, so a crash-resume from it can never re-copy stale
// old homes over an acknowledged write. On error, checkpoint failure,
// or pace abort the cursor keeps its last committed value and Run can
// be called again; a crash loses at most the in-flight window, which
// the resumed run re-copies — old homes stay authoritative until the
// commit, so torn new-home writes are invisible.
func (m *Migration) Run(ctx context.Context, pace PaceFunc, checkpoint func(cursor int64) error) (err error) {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return fmt.Errorf("core: migration already running")
	}
	if m.finished {
		m.mu.Unlock()
		return nil
	}
	m.running = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.running = false
		m.mu.Unlock()
	}()

	total := m.a.Blocks()
	for {
		es := m.a.epoch.Load()
		if es.mig != m {
			return fmt.Errorf("core: migration superseded")
		}
		lo := es.cursor
		if lo >= total {
			break
		}
		hi := lo + migChunk
		if hi > total {
			hi = total
		}
		moved, err := m.copyWindow(ctx, lo, hi, checkpoint)
		if err != nil {
			return err
		}
		if pace != nil && moved > 0 {
			if err := pace(ctx, int(moved)*m.a.bs); err != nil {
				return err
			}
		}
	}
	m.a.finishMigration(m)
	return nil
}

// copyWindow migrates [lo, hi), persists the cursor through
// checkpoint, and commits it. It returns how many physical block
// copies it performed.
func (m *Migration) copyWindow(ctx context.Context, lo, hi int64, checkpoint func(int64) error) (int64, error) {
	type move struct {
		lb       int64
		from, to layout.Loc
		image    bool
	}
	var moves []move
	for lb := lo; lb < hi; lb++ {
		if df, dt := m.from.DataLoc(lb), m.to.DataLoc(lb); df != dt {
			moves = append(moves, move{lb: lb, from: df, to: dt})
		}
		if mf, mt := m.from.MirrorLoc(lb), m.to.MirrorLoc(lb); mf != mt {
			moves = append(moves, move{lb: lb, from: mf, to: mt, image: true})
		}
	}
	if len(moves) == 0 {
		// No home changes in this window: the commit carries no routing
		// delta, so the durable cursor may lag it harmlessly — a resume
		// below it re-scans blocks whose old and new homes coincide.
		m.commitWindow(hi)
		if checkpoint != nil {
			if err := checkpoint(hi); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	m.openWindow(lo, hi)
	devs := m.a.devices()
	blank := m.a.blankCols.Load()
	buf := bufpool.Get(len(moves) * m.a.bs)
	defer bufpool.Put(buf)
	err := par.ForEach(ctx, len(moves), func(ctx context.Context, i int) error {
		mv := moves[i]
		dst := buf[i*m.a.bs : (i+1)*m.a.bs]
		// Read the authoritative old copy, falling back to the block's
		// other old copy if the primary source is down — a node kill
		// mid-rebalance must not stall the migration.
		src, alt := mv.from, m.from.MirrorLoc(mv.lb)
		if mv.image {
			alt = m.from.DataLoc(mv.lb)
		}
		rerr := errSourceDown
		if readable(devs, blank, src.Disk) {
			rerr = devs[src.Disk].ReadBlocks(ctx, src.Block, dst)
		}
		if rerr != nil && ctx.Err() == nil {
			if !readable(devs, blank, alt.Disk) {
				return fmt.Errorf("core: migrating block %d: both copies unavailable (%v): %w", mv.lb, rerr, raid.ErrDataLoss)
			}
			if aerr := devs[alt.Disk].ReadBlocks(ctx, alt.Block, dst); aerr != nil {
				return fmt.Errorf("core: migrating block %d: %v; fallback: %w", mv.lb, rerr, aerr)
			}
		} else if rerr != nil {
			return rerr
		}
		if !devs[mv.to.Disk].Healthy() {
			return fmt.Errorf("core: migration target disk %d unhealthy for block %d", mv.to.Disk, mv.lb)
		}
		return devs[mv.to.Disk].WriteBlocks(ctx, mv.to.Block, dst)
	})
	if err != nil {
		m.abortWindow()
		return 0, err
	}
	// Durable before visible: the cursor must reach stable storage
	// before commitWindow routes foreground writes to the new homes —
	// a crash-resume restarts from the durable cursor and re-copies
	// old homes, which would silently overwrite any acknowledged write
	// that had routed ahead of it. The window is still open here, so
	// overlapping writes stay gated while the checkpoint syncs.
	if checkpoint != nil {
		if err := checkpoint(hi); err != nil {
			m.abortWindow()
			return 0, fmt.Errorf("core: migration checkpoint at block %d: %w", hi, err)
		}
	}
	m.commitWindow(hi)
	m.movedBlocks.Add(int64(len(moves)))
	m.movedBytes.Add(int64(len(moves) * m.a.bs))
	return int64(len(moves)), nil
}

var errSourceDown = fmt.Errorf("source unavailable")

// finishMigration installs the target epoch as current and wakes every
// gated writer into the final layout.
func (a *RAIDx) finishMigration(m *Migration) {
	a.epoch.Store(&epochState{cur: m.to})
	m.mu.Lock()
	m.finished = true
	m.mu.Unlock()
	m.cond.Broadcast()
	a.met.events.Append(obs.EventRebalanceEnd, "raidx",
		fmt.Sprintf("epoch %d -> %d: moved %d blocks (%d bytes)",
			m.from.Gen(), m.to.Gen(), m.movedBlocks.Load(), m.movedBytes.Load()))
}

// CurrentMigration returns the in-flight migration, or nil.
func (a *RAIDx) CurrentMigration() *Migration { return a.epoch.Load().mig }

// beginMigration validates and installs a migration toward next,
// resuming at cursor (0 for a fresh start). Callers hold no locks.
func (a *RAIDx) beginMigration(next *layout.Epoch, cursor int64) (*Migration, error) {
	if cursor < 0 || cursor > a.Blocks() {
		return nil, fmt.Errorf("core: resume cursor %d outside [0,%d]", cursor, a.Blocks())
	}
	a.swapMu.Lock()
	defer a.swapMu.Unlock()
	es := a.epoch.Load()
	if es.next != nil {
		return nil, ErrMigrationActive
	}
	m := &Migration{a: a, from: es.cur, to: next}
	m.cond = sync.NewCond(&m.mu)
	// Quiesce in-flight writers that loaded a pre-migration view, then
	// publish: every write starting after this sees the migration and
	// gates against its copy windows.
	a.ioGate.Lock()
	a.epoch.Store(&epochState{cur: es.cur, next: next, cursor: cursor, mig: m})
	a.ioGate.Unlock()
	a.met.events.Append(obs.EventRebalanceStart, "raidx",
		fmt.Sprintf("epoch %d -> %d (%d nodes -> %d), resume at %d",
			es.cur.Gen(), next.Gen(), es.cur.Nodes(), next.Nodes(), cursor))
	return m, nil
}

// BeginGrow starts (or, with cursor > 0, resumes) a live expansion by
// addNodes whole nodes. newDevs are the new nodes' disks in SIOS order
// — for local disk l, then new node order — and may be nil when the
// device table already spans the target width (the restart-resume
// path). The returned Migration must be driven by Run; until it
// completes, reads and writes follow the migration cursor.
func (a *RAIDx) BeginGrow(addNodes int, newDevs []raid.Dev, cursor int64) (*Migration, error) {
	if _, _, active := a.Migrating(); active {
		return nil, ErrMigrationActive
	}
	cur := a.Epoch()
	next, err := cur.Grow(addNodes)
	if err != nil {
		return nil, err
	}
	devs := a.devices()
	need := next.Width() - len(devs)
	if need > 0 {
		if len(newDevs) != need {
			return nil, fmt.Errorf("core: grow by %d nodes needs %d devices, got %d", addNodes, need, len(newDevs))
		}
		for i, d := range newDevs {
			if d.BlockSize() != a.bs || d.NumBlocks() < a.lay.DiskBlocks {
				return nil, fmt.Errorf("core: new device %d geometry %dx%d does not match %dx%d",
					i, d.BlockSize(), d.NumBlocks(), a.bs, a.lay.DiskBlocks)
			}
		}
		a.swapMu.Lock()
		table := append(append([]raid.Dev(nil), a.devices()...), newDevs...)
		a.table.Store(&table)
		a.setColNames(len(table))
		a.swapMu.Unlock()
		a.intLog.Grow(len(table))
	} else if len(newDevs) != 0 {
		return nil, fmt.Errorf("core: device table already spans width %d; pass no new devices", len(devs))
	}
	return a.beginMigration(next, cursor)
}

// BeginShrink starts (or resumes) a live contraction by removeNodes
// tail nodes. The retired columns' devices stay in the table but no
// block maps to them once the migration completes.
func (a *RAIDx) BeginShrink(removeNodes int, cursor int64) (*Migration, error) {
	if _, _, active := a.Migrating(); active {
		return nil, ErrMigrationActive
	}
	cur := a.Epoch()
	next, err := cur.Shrink(removeNodes)
	if err != nil {
		return nil, err
	}
	return a.beginMigration(next, cursor)
}
