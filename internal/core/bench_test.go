package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchArray builds a pure-data 12-disk RAID-x (no timing), so the
// benchmarks measure the engine's own CPU and allocation cost.
func benchArray(b *testing.B, opt Options) (*RAIDx, []*disk.Disk) {
	b.Helper()
	devs := make([]raid.Dev, 12)
	raw := make([]*disk.Disk, 12)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(32<<10, 512), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	a, err := New(devs, 12, 1, opt)
	if err != nil {
		b.Fatal(err)
	}
	return a, raw
}

func BenchmarkWriteSmall(b *testing.B) {
	a, _ := benchArray(b, Options{})
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlocks(ctx, int64(i)%a.Blocks(), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(a.BlockSize()))
}

func BenchmarkWriteStripe(b *testing.B) {
	a, _ := benchArray(b, Options{})
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlocks(ctx, (int64(i)*12)%(a.Blocks()-12), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkReadStripe(b *testing.B) {
	a, _ := benchArray(b, Options{})
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkReadDegraded(b *testing.B) {
	a, raw := benchArray(b, Options{})
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	raw[3].Fail()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// benchMixed drives the tracing-overhead workload: alternating stripe
// reads and small writes, the mix the <3% tracing budget is quoted
// against. opt selects traced vs untraced engines; everything else is
// identical.
func benchMixed(b *testing.B, opt Options) {
	a, _ := benchArray(b, opt)
	ctx := context.Background()
	stripe := make([]byte, 12*a.BlockSize())
	small := make([]byte, a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, stripe); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := a.ReadBlocks(ctx, 0, stripe); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := a.WriteBlocks(ctx, int64(i)%a.Blocks(), small); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(stripe)+len(small)) / 2)
}

func BenchmarkMixed(b *testing.B) {
	benchMixed(b, Options{})
}

func BenchmarkMixedTraced(b *testing.B) {
	benchMixed(b, Options{Trace: trace.New(trace.Config{SlowThreshold: -1})})
}

// BenchmarkMixedTracedSampled is the production-shaped configuration:
// 1-in-64 operations recorded, the rest paying only the sampling tick.
func BenchmarkMixedTracedSampled(b *testing.B) {
	benchMixed(b, Options{Trace: trace.New(trace.Config{SampleEvery: 64, SlowThreshold: -1})})
}

func BenchmarkReadStripeTraced(b *testing.B) {
	a, _ := benchArray(b, Options{Trace: trace.New(trace.Config{SlowThreshold: -1})})
	ctx := context.Background()
	buf := make([]byte, 12*a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkRebuild(b *testing.B) {
	a, raw := benchArray(b, Options{})
	ctx := context.Background()
	all := make([]byte, a.Blocks()*int64(a.BlockSize()))
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw[5].Fail()
		if err := raw[5].Replace(); err != nil {
			b.Fatal(err)
		}
		if err := a.Rebuild(ctx, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(all)) / 6) // roughly the rebuilt disk's share
}
