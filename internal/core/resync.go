package core

import (
	"context"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/parity"
	"repro/internal/raid"
)

// PaceFunc throttles background repair I/O. The repair loops call it
// after each landed chunk with the bytes just copied; the function
// sleeps (or waits on a token bucket) to keep repair bandwidth under a
// budget so foreground I/O keeps priority. Returning an error aborts
// the repair job with its checkpoint intact — the supervisor uses that
// for pause.
type PaceFunc func(ctx context.Context, bytes int) error

// RebuildProgress is a rebuild checkpoint: how much of the device's
// data half (column blocks) and mirror half (owned groups) has landed.
// RebuildFrom updates it after every chunk, so a caller that persists
// it across an interruption resumes where the last run stopped instead
// of recopying the whole disk.
type RebuildProgress struct {
	DataDone    int64 `json:"data_done"`
	DataTotal   int64 `json:"data_total"`
	GroupsDone  int64 `json:"groups_done"`
	GroupsTotal int64 `json:"groups_total"`
	// Epoch is the layout generation the checkpoint was cut under. A
	// rebalance between runs moves placements, so a resumed rebuild
	// restarts from zero when the generations differ.
	Epoch uint64 `json:"epoch,omitempty"`
}

// done reports progress in physical blocks, the unit of the obs gauges.
func (p *RebuildProgress) done(gs int64) int64 {
	return p.DataDone + p.GroupsDone*gs
}

// Total reports the job size in physical blocks.
func (p *RebuildProgress) Total(gs int64) int64 {
	return p.DataTotal + p.GroupsTotal*gs
}

// ResyncStats reports what a delta resync moved.
type ResyncStats struct {
	Regions      int   `json:"regions"`
	BlocksCopied int64 `json:"blocks_copied"`
	BytesCopied  int64 `json:"bytes_copied"`
}

// ScrubStats reports what a sampled scrub checked and repaired.
type ScrubStats struct {
	BlocksChecked  int64 `json:"blocks_checked"`
	Mismatches     int64 `json:"mismatches"`
	BlocksRepaired int64 `json:"blocks_repaired"`
}

// resyncSource maps physical block pb of device idx back to the logical
// block stored there. ok is false for blocks no logical block maps to
// (capacity truncation, unused mirror slots) — those need no resync.
//
// The data half is the inverse of DataLoc: disk idx, block pb holds
// lb = pb·width + idx. The mirror half is the inverse of GroupLoc:
// pb-mirrorBase falls in group slot (pb-base)/gs at offset (pb-base)%gs,
// and the group in that slot whose MirrorDisk is idx — each disk owns
// exactly one group out of every width consecutive groups, so the scan
// is bounded by width.
func (a *RAIDx) resyncSource(pb int64, idx int) (int64, bool) {
	if ep := a.Epoch(); !ep.Trivial() {
		// Overridden placements: the epoch keeps exact inverse maps. The
		// data half stays a contiguous prefix, the mirror half is the
		// base slot window plus relocated images.
		if pb < 0 || pb >= a.lay.DiskBlocks {
			return 0, false
		}
		if pb < a.lay.DiskBlocks/2 {
			return ep.DataSource(idx, pb)
		}
		return ep.MirrorSource(idx, pb)
	}
	width := int64(a.lay.TotalDisks())
	gs := int64(a.lay.GroupSize())
	base := a.lay.DiskBlocks / 2
	if pb < 0 {
		return 0, false
	}
	if pb < base {
		lb := pb*width + int64(idx)
		if lb >= a.Blocks() {
			return 0, false
		}
		return lb, true
	}
	off := pb - base
	slot := off / gs
	j := off % gs
	for g := slot * width; g < (slot+1)*width; g++ {
		if a.lay.MirrorDisk(g) != idx {
			continue
		}
		lb := g*gs + j
		if lb >= a.Blocks() {
			return 0, false
		}
		return lb, true
	}
	return 0, false
}

// peerLoc reports where the live copy of logical block lb lives, given
// that device idx is the stale one: the mirror image when idx holds the
// data block, the data block when idx holds the image. OSM orthogonality
// guarantees the peer is on a different node.
func (a *RAIDx) peerLoc(lb int64, idx int) layout.Loc {
	es := a.epoch.Load()
	if d := es.dataLoc(lb); d.Disk != idx {
		return d
	}
	return es.mirrorLoc(lb)
}

// Resync replays dirty physical regions of device idx from the live
// peer copies — the delta alternative to a full Rebuild when a device
// returns stale rather than blank. Regions normally come from
// intent.Log.TakeDirty; on error the caller must re-mark the regions it
// passed in (replaying a region twice is idempotent, losing one is
// not). pace, when non-nil, throttles the copy like RebuildFrom.
func (a *RAIDx) Resync(ctx context.Context, idx int, regions []intent.Region, pace PaceFunc) (st ResyncStats, err error) {
	devs := a.devices()
	if idx < 0 || idx >= len(devs) {
		return st, fmt.Errorf("core: resync of device %d out of range", idx)
	}
	if _, _, active := a.Migrating(); active {
		return st, ErrMigrationActive
	}
	if a.ColumnRetired(idx) {
		return st, ErrRetiredColumn
	}
	if !devs[idx].Healthy() {
		return st, fmt.Errorf("core: resync target %d is not healthy", idx)
	}
	blank := a.blankCols.Load()
	ctx, root := a.tracer.StartRoot(ctx, "raidx.resync", a.col(idx))
	defer func() { root.End(err) }()
	subject := fmt.Sprintf("raidx/d%d", idx)
	a.met.events.Append(obs.EventResyncStart, subject,
		fmt.Sprintf("%d regions", len(regions)))
	defer func() {
		detail := fmt.Sprintf("copied %d blocks (%d bytes) over %d regions",
			st.BlocksCopied, st.BytesCopied, st.Regions)
		if err != nil {
			detail += ": " + err.Error()
		}
		a.met.events.Append(obs.EventResyncEnd, subject, detail)
	}()
	buf := bufpool.Get(rebuildChunk * a.bs)
	defer bufpool.Put(buf)
	srcs := make([]layout.Loc, rebuildChunk)
	valid := make([]bool, rebuildChunk)
	for _, reg := range regions {
		st.Regions++
		for lo := reg.Start; lo < reg.Start+reg.Count; lo += rebuildChunk {
			hi := reg.Start + reg.Count
			if hi > lo+rebuildChunk {
				hi = lo + rebuildChunk
			}
			n := int(hi - lo)
			for t := 0; t < n; t++ {
				lb, ok := a.resyncSource(lo+int64(t), idx)
				valid[t] = ok
				if ok {
					srcs[t] = a.peerLoc(lb, idx)
				}
			}
			err := par.ForEach(ctx, n, func(ctx context.Context, t int) error {
				if !valid[t] {
					return nil
				}
				src := devs[srcs[t].Disk]
				if !readable(devs, blank, srcs[t].Disk) {
					return fmt.Errorf("core: live copy of physical block %d/%d unavailable during resync: %w",
						idx, lo+int64(t), raid.ErrDataLoss)
				}
				return src.ReadBlocks(ctx, srcs[t].Block, buf[t*a.bs:(t+1)*a.bs])
			})
			if err != nil {
				return st, err
			}
			// Write the chunk as contiguous valid runs: capacity-truncated
			// tails and unused mirror slots are skipped, everything else
			// lands in as few device writes as possible.
			for t := 0; t < n; {
				if !valid[t] {
					t++
					continue
				}
				run := t
				for run < n && valid[run] {
					run++
				}
				part := buf[t*a.bs : run*a.bs]
				if err := devs[idx].WriteBlocks(ctx, lo+int64(t), part); err != nil {
					return st, err
				}
				st.BlocksCopied += int64(run - t)
				st.BytesCopied += int64(len(part))
				t = run
			}
			if pace != nil {
				if err := pace(ctx, n*a.bs); err != nil {
					return st, err
				}
			}
		}
	}
	return st, nil
}

// ScrubSample spot-checks device idx after a resync: every stride-th
// physical block (stride <= 0 takes rebuildChunk) is compared against
// its live peer copy and repaired from the peer on mismatch. The
// sampled scrub is the cheap confidence check that the intent log
// really covered everything the device missed — a mismatch here means
// dirty-region tracking lost a write, so the caller should escalate to
// a full rebuild.
func (a *RAIDx) ScrubSample(ctx context.Context, idx int, stride int64, pace PaceFunc) (st ScrubStats, err error) {
	devs := a.devices()
	if idx < 0 || idx >= len(devs) {
		return st, fmt.Errorf("core: scrub of device %d out of range", idx)
	}
	if _, _, active := a.Migrating(); active {
		return st, ErrMigrationActive
	}
	if a.ColumnRetired(idx) {
		return st, ErrRetiredColumn
	}
	if !devs[idx].Healthy() {
		return st, fmt.Errorf("core: scrub target %d is not healthy", idx)
	}
	blank := a.blankCols.Load()
	if stride <= 0 {
		stride = rebuildChunk
	}
	ctx, root := a.tracer.StartRoot(ctx, "raidx.scrub", a.col(idx))
	defer func() { root.End(err) }()
	have := bufpool.Get(a.bs)
	want := bufpool.Get(a.bs)
	defer bufpool.Put(have)
	defer bufpool.Put(want)
	for pb := int64(0); pb < a.lay.DiskBlocks; pb += stride {
		lb, ok := a.resyncSource(pb, idx)
		if !ok {
			continue
		}
		src := a.peerLoc(lb, idx)
		peer := devs[src.Disk]
		if !readable(devs, blank, src.Disk) {
			return st, fmt.Errorf("core: live copy of physical block %d/%d unavailable during scrub: %w",
				idx, pb, raid.ErrDataLoss)
		}
		if err := peer.ReadBlocks(ctx, src.Block, want); err != nil {
			return st, err
		}
		if err := devs[idx].ReadBlocks(ctx, pb, have); err != nil {
			return st, err
		}
		st.BlocksChecked++
		if parity.FirstDiff(have, want) >= 0 {
			st.Mismatches++
			if err := devs[idx].WriteBlocks(ctx, pb, want); err != nil {
				return st, err
			}
			st.BlocksRepaired++
		}
		if pace != nil {
			if err := pace(ctx, 2*a.bs); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}
