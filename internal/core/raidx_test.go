package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
	"repro/internal/vclock"
)

const bs = 1024

// simArray builds a RAID-x over simulated disks with a flat timing
// model (no seek) for easy arithmetic, returning the raw disks too.
func simArray(t *testing.T, s *vclock.Sim, nodes, k int, blocks int64, model disk.Model, opt Options) (*RAIDx, []*disk.Disk) {
	t.Helper()
	devs := make([]raid.Dev, nodes*k)
	raw := make([]*disk.Disk, nodes*k)
	for i := range devs {
		d := disk.New(s, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), model)
		devs[i] = d
		raw[i] = d
	}
	a, err := New(devs, nodes, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	return a, raw
}

// TestSmallWriteHidesMirror: a single-block write should cost one disk
// write (no read-modify-write, no second synchronous write); the image
// lands in the background and Flush waits for it.
func TestSmallWriteHidesMirror(t *testing.T) {
	s := vclock.New()
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	a, _ := simArray(t, s, 4, 1, 16, model, Options{})
	s.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{1}, bs)
		if err := a.WriteBlocks(ctx, 0, data); err != nil {
			t.Error(err)
		}
		// 1024 B at 1 MB/s = 1.024 ms for the data write only.
		want := time.Duration(float64(bs) / 1e6 * float64(time.Second))
		if p.Now() != want {
			t.Errorf("small write took %v, want %v (mirror must be hidden)", p.Now(), want)
		}
		if err := a.Flush(ctx); err != nil {
			t.Error(err)
		}
		// Flush waits for the background image write (same size, on a
		// different disk, so it overlapped the data write).
		if p.Now() != want {
			t.Errorf("flush completed at %v, want %v (image write overlaps)", p.Now(), want)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestForegroundMirrorAblation: with ForegroundMirror the client waits
// for the image write too (it overlaps the data write on another disk,
// so it costs one extra message-free disk time only when queued —
// here they overlap, so we check it is at least not hidden when the
// mirror disk is busy).
func TestForegroundMirrorAblation(t *testing.T) {
	s := vclock.New()
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	a, raw := simArray(t, s, 4, 1, 16, model, Options{ForegroundMirror: true})
	s.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		// Pre-load the mirror disk of group 0 (disk 3) with queued work.
		busy := 10 * time.Millisecond
		raw[3].Arm().Reserve(busy)
		data := bytes.Repeat([]byte{1}, bs)
		if err := a.WriteBlocks(ctx, 0, data); err != nil {
			t.Error(err)
		}
		// Foreground mirror: the client waits for the image write,
		// which queues behind 10 ms of existing work.
		xfer := time.Duration(float64(bs) / 1e6 * float64(time.Second))
		if p.Now() != busy+xfer {
			t.Errorf("foreground-mirror write took %v, want %v", p.Now(), busy+xfer)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Same scenario with background mirroring: the client is unaffected.
	s2 := vclock.New()
	a2, raw2 := simArray(t, s2, 4, 1, 16, model, Options{})
	s2.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		raw2[3].Arm().Reserve(10 * time.Millisecond)
		data := bytes.Repeat([]byte{1}, bs)
		if err := a2.WriteBlocks(ctx, 0, data); err != nil {
			t.Error(err)
		}
		xfer := time.Duration(float64(bs) / 1e6 * float64(time.Second))
		if p.Now() != xfer {
			t.Errorf("background-mirror write took %v, want %v", p.Now(), xfer)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGatheredMirrorIsOneLongWrite: writing one full mirror group must
// issue a single physical write on the mirror disk; the scatter
// ablation issues GroupSize separate writes and pays GroupSize seeks.
func TestGatheredMirrorIsOneLongWrite(t *testing.T) {
	// Per-request controller overhead is what separates one gathered
	// write from GroupSize scattered ones once the disk detects the
	// sequential continuation.
	model := disk.Model{Seek: 8 * time.Millisecond, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: time.Millisecond}

	run := func(opt Options) (mirrorWrites int64, mirrorBusy time.Duration) {
		s := vclock.New()
		a, raw := simArray(t, s, 4, 1, 16, model, opt)
		s.Spawn("client", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			// Blocks 0..2 form mirror group 0, mirrored on disk 3.
			data := bytes.Repeat([]byte{7}, 3*bs)
			if err := a.WriteBlocks(ctx, 0, data); err != nil {
				t.Error(err)
			}
			if err := a.Flush(ctx); err != nil {
				t.Error(err)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		_, w, _, _ := raw[3].Stats()
		return w, raw[3].BgLane().BusyTime()
	}

	gw, gb := run(Options{})
	sw, sb := run(Options{ScatterMirror: true})
	if gw != 1 {
		t.Errorf("gathered: %d mirror writes, want 1", gw)
	}
	if sw != 3 {
		t.Errorf("scattered: %d mirror writes, want 3", sw)
	}
	if gb >= sb {
		t.Errorf("gathered mirror busy %v not cheaper than scattered %v", gb, sb)
	}
}

// TestPartialGroupMirrorWrites: a write covering parts of two mirror
// groups must land images in both groups' slots, contiguously.
func TestPartialGroupMirrorWrites(t *testing.T) {
	s := vclock.New()
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e9, PerRequest: 0}
	a, _ := simArray(t, s, 4, 1, 16, model, Options{})
	s.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		// Blocks 2..4 span group 0 (blocks 0-2) and group 1 (blocks 3-5).
		data := make([]byte, 3*bs)
		rand.New(rand.NewSource(1)).Read(data)
		if err := a.WriteBlocks(ctx, 2, data); err != nil {
			t.Error(err)
		}
		if err := a.Flush(ctx); err != nil {
			t.Error(err)
		}
		// Verify both images directly via the layout.
		for i := 0; i < 3; i++ {
			lb := int64(2 + i)
			m := a.Layout().MirrorLoc(lb)
			got := make([]byte, bs)
			if err := a.devices()[m.Disk].ReadBlocks(ctx, m.Block, got); err != nil {
				t.Error(err)
			}
			if !bytes.Equal(got, data[i*bs:(i+1)*bs]) {
				t.Errorf("image of block %d wrong", lb)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLargeWriteParallelism: in an n-disk array with no contention, a
// full-stripe write should take roughly 1/n of the serial time because
// the per-disk writes overlap.
func TestLargeWriteParallelism(t *testing.T) {
	s := vclock.New()
	model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	a, _ := simArray(t, s, 4, 1, 64, model, Options{})
	s.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		// 16 blocks over 4 disks = 4 blocks per disk.
		data := make([]byte, 16*bs)
		if err := a.WriteBlocks(ctx, 0, data); err != nil {
			t.Error(err)
		}
		perDisk := time.Duration(float64(4*bs) / 1e6 * float64(time.Second))
		if p.Now() != perDisk {
			t.Errorf("16-block write took %v, want %v (4 disks in parallel)", p.Now(), perDisk)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyDetectsCorruption: Verify must flag a mismatched image.
func TestVerifyDetectsCorruption(t *testing.T) {
	a, raw := pureArray(t, 4, 1, 16)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(2)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	// Corrupt one image block behind the engine's back.
	m := a.Layout().MirrorLoc(5)
	if err := raw[m.Disk].WriteBlocks(ctx, m.Block, bytes.Repeat([]byte{0xEE}, bs)); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err == nil {
		t.Fatal("verify missed corrupted image")
	}
}

func pureArray(t *testing.T, nodes, k int, blocks int64) (*RAIDx, []*disk.Disk) {
	t.Helper()
	devs := make([]raid.Dev, nodes*k)
	raw := make([]*disk.Disk, nodes*k)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	a, err := New(devs, nodes, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a, raw
}

// TestMultiFailureDifferentGroups: an n-by-k RAID-x tolerates multiple
// failed disks as long as no block loses both copies — e.g. two disks
// on the same node never hold a block and its image.
func TestMultiFailureSameNode(t *testing.T) {
	a, raw := pureArray(t, 4, 3, 24)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*bs)
	rand.New(rand.NewSource(8)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	// Disks 1, 5, 9 all live on node 1: orthogonality guarantees no
	// block and its image are both on node 1.
	raw[1].Fail()
	raw[5].Fail()
	raw[9].Fail()
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read with a whole node down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data with a whole node down")
	}
}

// TestBalancedReadAvoidsBusyDisk: with BalanceReads, a single-block
// read dodges a data disk buried under queued work by reading the
// orthogonal image instead.
func TestBalancedReadAvoidsBusyDisk(t *testing.T) {
	run := func(balance bool) time.Duration {
		s := vclock.New()
		model := disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
		a, raw := simArray(t, s, 4, 1, 16, model, Options{BalanceReads: balance})
		var took time.Duration
		s.Spawn("reader", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			// Populate block 0 and its image.
			if err := a.WriteBlocks(ctx, 0, make([]byte, bs)); err != nil {
				t.Error(err)
			}
			if err := a.Flush(ctx); err != nil {
				t.Error(err)
			}
			start := p.Now()
			// Bury block 0's data disk (disk 0) under 50 ms of work.
			raw[0].Arm().Reserve(50 * time.Millisecond)
			buf := make([]byte, bs)
			if err := a.ReadBlocks(ctx, 0, buf); err != nil {
				t.Error(err)
			}
			took = p.Now() - start
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	plain := run(false)
	balanced := run(true)
	if plain < 50*time.Millisecond {
		t.Fatalf("unbalanced read took %v, expected to queue behind 50ms", plain)
	}
	if balanced >= 10*time.Millisecond {
		t.Fatalf("balanced read took %v, expected to dodge the busy disk", balanced)
	}
}

// TestBalancedReadCorrectness: balancing never changes results, even
// interleaved with writes.
func TestBalancedReadCorrectness(t *testing.T) {
	devs := make([]raid.Dev, 4)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, 64), disk.DefaultModel())
	}
	a, err := New(devs, 4, 1, Options{BalanceReads: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shadow := make([]byte, a.Blocks()*int64(bs))
	rng := rand.New(rand.NewSource(21))
	for op := 0; op < 300; op++ {
		b := rng.Int63n(a.Blocks())
		if rng.Intn(2) == 0 {
			buf := make([]byte, bs)
			rng.Read(buf)
			if err := a.WriteBlocks(ctx, b, buf); err != nil {
				t.Fatal(err)
			}
			copy(shadow[b*int64(bs):], buf)
		} else {
			buf := make([]byte, bs)
			if err := a.ReadBlocks(ctx, b, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, shadow[b*int64(bs):(b+1)*int64(bs)]) {
				t.Fatalf("op %d: balanced read diverged at block %d", op, b)
			}
		}
	}
}

// TestRandomGeometriesWithFailures: property sweep across random n-by-k
// geometries — write a random image, fail a random disk, verify every
// byte is still served, rebuild, verify redundancy.
func TestRandomGeometriesWithFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(7) // 2..8 nodes
		k := 1 + rng.Intn(3) // 1..3 disks per node
		blocks := int64(2 * (n - 1) * (2 + rng.Intn(6)))
		devs := make([]raid.Dev, n*k)
		raw := make([]*disk.Disk, n*k)
		for i := range devs {
			d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.DefaultModel())
			devs[i] = d
			raw[i] = d
		}
		a, err := New(devs, n, k, Options{})
		if err != nil {
			t.Fatalf("trial %d (%dx%d, %d blocks): %v", trial, n, k, blocks, err)
		}
		ctx := context.Background()
		data := make([]byte, a.Blocks()*int64(bs))
		rng.Read(data)
		if err := a.WriteBlocks(ctx, 0, data); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		if err := a.Flush(ctx); err != nil {
			t.Fatalf("trial %d: flush: %v", trial, err)
		}
		victim := rng.Intn(n * k)
		raw[victim].Fail()
		got := make([]byte, len(data))
		if err := a.ReadBlocks(ctx, 0, got); err != nil {
			t.Fatalf("trial %d (%dx%d): degraded read with disk %d down: %v", trial, n, k, victim, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (%dx%d): degraded data mismatch", trial, n, k)
		}
		if err := raw[victim].Replace(); err != nil {
			t.Fatalf("replace: %v", err)
		}
		if err := a.Rebuild(ctx, victim); err != nil {
			t.Fatalf("trial %d: rebuild: %v", trial, err)
		}
		if err := a.Verify(ctx); err != nil {
			t.Fatalf("trial %d (%dx%d): verify after rebuild: %v", trial, n, k, err)
		}
	}
}

// TestSwapDevDuringReadStorm: hot-swapping members while parallel reads
// and writes are in flight must be race-free (the device table is
// copy-on-write; run under -race) and must never fail an operation —
// in-flight requests finish against the table they started with.
func TestSwapDevDuringReadStorm(t *testing.T) {
	const nodes, blocks = 4, 64
	devs := make([]raid.Dev, nodes)
	for i := range devs {
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(bs, blocks), disk.Model{})
	}
	a, err := New(devs, nodes, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.WriteBlocks(ctx, 0, bytes.Repeat([]byte{7}, 8*bs)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8*bs)
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := a.ReadBlocks(ctx, 0, buf); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if err := a.WriteBlocks(ctx, int64(8+g), bytes.Repeat([]byte{byte(g)}, bs)); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}()
	}
	for swap := 0; swap < 40; swap++ {
		idx := swap % nodes
		spare := disk.New(nil, fmt.Sprintf("spare%d", swap), store.NewMem(bs, blocks), disk.Model{})
		if _, err := a.SwapDev(idx, spare); err != nil {
			t.Fatal(err)
		}
		// The spare is blank; regenerate it from the orthogonal copies
		// while the storm continues.
		if err := a.Rebuild(ctx, idx); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
