package core_test

// The in-process crash harness: RAID-x over file-backed stores on a
// fault-injection file system. A simulated power cut mid-write-storm
// drops every unsynced write (optionally tearing the last one, or after
// an fsync that lied), the array is reopened as a restarted node would,
// and the repair supervisor — recovering its write-ahead intent snapshot
// from an honest state directory — delta-resyncs only the storm's dirty
// regions until the array verifies clean. Zero foreground I/O errors,
// recovery traffic a fraction of the disks.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

const (
	crashBS     = 1024
	crashBlocks = 400
	crashNodes  = 4
)

// crashRig is one "process life" of the simulated node: an array over
// file stores opened through the shared FaultFS.
type crashRig struct {
	arr    *core.RAIDx
	il     *intent.Log
	stores []*store.File
}

func openCrashRig(t *testing.T, ffs *store.FaultFS, imgDir string) *crashRig {
	t.Helper()
	devs := make([]raid.Dev, crashNodes)
	stores := make([]*store.File, crashNodes)
	for i := range devs {
		fst, err := store.OpenFileFS(ffs, filepath.Join(imgDir, fmt.Sprintf("d%d.img", i)),
			crashBS, crashBlocks, store.FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = fst
		devs[i] = disk.New(nil, fmt.Sprintf("d%d", i), fst, disk.DefaultModel())
	}
	il := intent.NewLog(crashNodes, crashBlocks, 8)
	arr, err := core.New(devs, crashNodes, 1, core.Options{Intent: il, IntentAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	return &crashRig{arr: arr, il: il, stores: stores}
}

func (r *crashRig) syncAll(t *testing.T) {
	t.Helper()
	for _, s := range r.stores {
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCrashRecoveryTornWrites(t *testing.T) { testCrashRecovery(t, "torn") }
func TestCrashRecoveryLyingFsync(t *testing.T) { testCrashRecovery(t, "lying") }

func testCrashRecovery(t *testing.T, mode string) {
	ffs := store.NewFaultFS(store.OS)
	imgDir := t.TempDir()
	// The supervisor's state directory lives on an honest file system —
	// the write-ahead intent snapshots must survive the cut that takes
	// the data disks' caches with it.
	stateDir := t.TempDir()
	ctx := context.Background()

	// ---- First life: baseline, then a write storm, then the plug. ----
	rig := openCrashRig(t, ffs, imgDir)
	baseline := make([]byte, rig.arr.Blocks()*int64(crashBS))
	rand.New(rand.NewSource(21)).Read(baseline)
	if err := rig.arr.WriteBlocks(ctx, 0, baseline); err != nil {
		t.Fatal(err)
	}
	if err := rig.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rig.syncAll(t) // honest durability barrier: the baseline is safe
	for i := 0; i < crashNodes; i++ {
		rig.il.ClearDev(i) // baseline fully mirrored and synced: no debt
	}

	cfg := repair.Config{Poll: time.Millisecond, FailureBudget: 10 * time.Second, StateDir: stateDir}
	sup1 := repair.New(rig.arr, nil, cfg)
	// Paused: jobs must not race the storm, but the tick loop still
	// persists intent snapshots at poll cadence.
	sup1.Pause()
	sup1.Start(ctx)

	if mode == "lying" {
		ffs.SetSyncLies(true)
	}
	stormBlocks := make(map[int64]bool)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 25; i++ {
		lb := rng.Int63n(rig.arr.Blocks())
		buf := make([]byte, crashBS)
		rng.Read(buf)
		if err := rig.arr.WriteBlocks(ctx, lb, buf); err != nil {
			t.Fatalf("foreground write during storm: %v", err)
		}
		stormBlocks[lb] = true
		if mode == "lying" && i%5 == 4 {
			// The app asks for durability and is lied to.
			for _, s := range rig.stores {
				if err := s.Sync(); err != nil {
					t.Fatalf("lying sync still errored: %v", err)
				}
			}
		}
	}
	if err := rig.arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Let the paused supervisor persist the storm's write-ahead marks:
	// the snapshot on the honest FS must cover the live log exactly.
	waitCond(t, "intent snapshot to catch up", func() bool {
		probe := intent.NewLog(crashNodes, crashBlocks, 8)
		if err := probe.LoadFrom(store.OS, filepath.Join(stateDir, "intent.snap")); err != nil {
			return false
		}
		for i := 0; i < crashNodes; i++ {
			if probe.DirtyRegions(i) != rig.il.DirtyRegions(i) {
				return false
			}
		}
		return true
	})
	sup1.Stop()
	if ffs.UnsyncedBytes() == 0 {
		t.Fatal("storm left nothing volatile; the crash would prove nothing")
	}
	switch mode {
	case "torn":
		ffs.CrashTorn()
	case "lying":
		ffs.Crash()
		ffs.SetSyncLies(false)
	}

	// ---- Second life: reopen, recover, resync, verify. ----
	rig2 := openCrashRig(t, ffs, imgDir)
	for i, s := range rig2.stores {
		if s.WasClean() {
			t.Fatalf("image %d reopened clean after the crash", i)
		}
	}
	sup2 := repair.New(rig2.arr, nil, cfg)
	if !rig2.il.AnyDirty() {
		t.Fatal("intent snapshot not recovered from the state directory")
	}
	recoveredDirty := int64(0)
	for i := 0; i < crashNodes; i++ {
		recoveredDirty += rig2.il.DirtyBlocks(i)
	}
	sup2.Start(ctx)
	defer sup2.Stop()
	waitCond(t, "recovery resync of every member", func() bool {
		if rig2.il.AnyDirty() {
			return false
		}
		st := sup2.Status()
		for i := range st.Devices {
			if st.Devices[i].State != repair.StateHealthy {
				return false
			}
		}
		return st.Active == -1
	})

	if err := rig2.arr.Verify(ctx); err != nil {
		t.Fatalf("verify after crash recovery: %v", err)
	}
	// Delta, not a full rebuild: recovery traffic bounded by the regions
	// the storm could have dirtied, far under the array's total bytes.
	st := sup2.Status()
	var resynced int64
	for i := range st.Devices {
		if st.Devices[i].Rebuilds != 0 {
			t.Fatalf("member %d took a full rebuild; recovery must be a delta resync", i)
		}
		resynced += st.Devices[i].ResyncBytes
	}
	totalBytes := int64(crashNodes) * crashBlocks * crashBS
	if resynced == 0 || resynced >= totalBytes/4 {
		t.Fatalf("recovery moved %d bytes, want a small nonzero fraction of %d", resynced, totalBytes)
	}
	if max := recoveredDirty * int64(crashBS); resynced > max {
		t.Fatalf("recovery moved %d bytes, more than the %d the snapshot marked", resynced, max)
	}
	// Every block the storm did not touch must read back as the durable
	// baseline; storm blocks may hold old, new, or torn content, but the
	// copies are consistent (Verify above) and reads must not error.
	got := make([]byte, len(baseline))
	if err := rig2.arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("foreground read after recovery: %v", err)
	}
	for lb := int64(0); lb < rig2.arr.Blocks(); lb++ {
		if stormBlocks[lb] {
			continue
		}
		off := lb * int64(crashBS)
		if !bytes.Equal(got[off:off+crashBS], baseline[off:off+crashBS]) {
			t.Fatalf("untouched block %d corrupted by the crash", lb)
		}
	}
}
