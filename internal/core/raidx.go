// Package core implements RAID-x, the paper's contribution: a
// distributed disk array built on orthogonal striping and mirroring
// (OSM).
//
// Data blocks stripe across the data halves of all n·k disks exactly
// like RAID-0, so reads and large writes enjoy full-stripe bandwidth.
// Redundancy comes from mirror images, but unlike RAID-10 or chained
// declustering the images are not written block-by-block alongside the
// data: the images of n-1 consecutive blocks form a *mirror group* that
// is gathered into one long contiguous write on the single disk (on the
// single node) that holds none of those blocks, and that write is
// performed in the background by the cooperative disk drivers. Two
// consequences give RAID-x its measured advantage:
//
//   - the small-write problem of RAID-5 disappears — a small write is
//     one foreground data write plus one deferred image write, with no
//     read-modify-write of parity;
//   - mirroring overhead hides behind foreground traffic — the client
//     sees RAID-0 write latency while the array converges to full
//     redundancy asynchronously (Flush forces convergence).
//
// Orthogonality (no block shares a node with its image) preserves
// single-disk — and in an n-by-k array, per-mirror-group — fault
// tolerance: reads fall back to images, writes continue on the
// surviving copy, and Rebuild regenerates a replaced disk from the
// orthogonal copies.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/layout"
	"repro/internal/par"
	"repro/internal/raid"
)

// Options tune the engine; the zero value is the paper's design. The
// other settings exist for the ablation benchmarks in DESIGN.md.
type Options struct {
	// ForegroundMirror writes mirror images synchronously, ablating
	// the "hide mirroring overhead in the background" design point.
	ForegroundMirror bool
	// ScatterMirror writes each image block individually instead of
	// gathering a mirror group into one long write, ablating the
	// clustered-image design point.
	ScatterMirror bool
	// BalanceReads lets single-block reads go to the image copy when
	// the data disk's queue is longer — the I/O load balancing the
	// paper's Section 7 lists as the Trojans project's next step.
	BalanceReads bool
}

// RAIDx is the OSM array engine. It satisfies raid.Array,
// raid.Rebuilder, and raid.Verifier.
type RAIDx struct {
	devs []raid.Dev
	lay  layout.OSM
	bs   int
	opt  Options
	// flip alternates the preferred copy for balanced reads so that
	// simultaneous readers split between data and image instead of
	// herding onto whichever side momentarily reports less backlog.
	flip atomic.Uint32
}

// New builds a RAID-x array over an n-by-k grid of devices: devs[j] is
// global disk j, attached to node j mod nodes (the paper's Figure 3
// arrangement). len(devs) must equal nodes × disksPerNode.
func New(devs []raid.Dev, nodes, disksPerNode int, opt Options) (*RAIDx, error) {
	if len(devs) != nodes*disksPerNode {
		return nil, fmt.Errorf("core: %d devices for a %dx%d array", len(devs), nodes, disksPerNode)
	}
	bs, per, err := checkDevs(devs)
	if err != nil {
		return nil, err
	}
	if per%2 != 0 {
		per-- // use an even number of blocks per disk
	}
	if per/2 < int64(nodes-1) {
		return nil, fmt.Errorf("core: disks too small (%d blocks) for mirror groups of %d", per, nodes-1)
	}
	return &RAIDx{
		devs: devs,
		lay:  layout.NewOSM(nodes, disksPerNode, per),
		bs:   bs,
		opt:  opt,
	}, nil
}

func checkDevs(devs []raid.Dev) (int, int64, error) {
	bs := devs[0].BlockSize()
	per := devs[0].NumBlocks()
	for i, d := range devs {
		if d.BlockSize() != bs {
			return 0, 0, fmt.Errorf("core: device %d block size %d != %d", i, d.BlockSize(), bs)
		}
		if d.NumBlocks() < per {
			per = d.NumBlocks()
		}
	}
	return bs, per, nil
}

// Layout exposes the OSM address arithmetic (used by the checkpointing
// module and the layout-printing tool).
func (a *RAIDx) Layout() layout.OSM { return a.lay }

// SwapDev implements raid.DevSwapper: it replaces member idx (typically
// a failed disk) with a hot spare of identical geometry and returns the
// previous device. The new device is blank until Rebuild runs.
func (a *RAIDx) SwapDev(idx int, dev raid.Dev) (raid.Dev, error) {
	if idx < 0 || idx >= len(a.devs) {
		return nil, fmt.Errorf("core: swap of device %d out of range", idx)
	}
	if dev.BlockSize() != a.bs || dev.NumBlocks() < a.lay.DiskBlocks {
		return nil, fmt.Errorf("core: spare geometry %dx%d does not match %dx%d",
			dev.BlockSize(), dev.NumBlocks(), a.bs, a.lay.DiskBlocks)
	}
	old := a.devs[idx]
	a.devs[idx] = dev
	return old, nil
}

// Name implements raid.Array.
func (a *RAIDx) Name() string { return "raidx" }

// BlockSize implements raid.Array.
func (a *RAIDx) BlockSize() int { return a.bs }

// Blocks implements raid.Array.
func (a *RAIDx) Blocks() int64 { return a.lay.DataBlocks() }

// ReadBlocks implements raid.Array: a parallel RAID-0-style read over
// the data halves, with per-block fallback to mirror images for blocks
// on failed disks.
func (a *RAIDx) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := a.checkRange(b, p)
	if err != nil {
		return err
	}
	width := a.lay.TotalDisks()
	var fns []func(context.Context) error
	for col := 0; col < width; col++ {
		first := b + (int64(col)-b%int64(width)+int64(width))%int64(width)
		if first >= b+int64(n) {
			continue
		}
		count := int((b+int64(n)-1-first)/int64(width)) + 1
		dev := a.devs[col]
		if dev.Healthy() {
			// Load-balanced single-block read: alternate the preferred
			// copy, then defer to whichever disk has less queued work.
			if a.opt.BalanceReads && count == 1 {
				m := a.lay.MirrorLoc(first)
				mdev := a.devs[m.Disk]
				if mdev.Healthy() {
					db, mb := raid.BacklogOf(dev), raid.BacklogOf(mdev)
					useMirror := mb < db || (mb == db && a.flip.Add(1)%2 == 0)
					if useMirror {
						fns = append(fns, func(ctx context.Context) error {
							dst := p[(first-b)*int64(a.bs) : (first-b+1)*int64(a.bs)]
							err := mdev.ReadBlocks(ctx, m.Block, dst)
							if err == nil || ctx.Err() != nil {
								return err
							}
							// Failover to the data copy.
							if derr := dev.ReadBlocks(ctx, first/int64(width), dst); derr == nil {
								return nil
							}
							return err
						})
						continue
					}
				}
			}
			fns = append(fns, func(ctx context.Context) error {
				buf := make([]byte, count*a.bs)
				if err := dev.ReadBlocks(ctx, first/int64(width), buf); err != nil {
					if ctx.Err() != nil {
						return err
					}
					// Read-failover: the primary errored or timed out
					// mid-run (a flaky/partitioned node, not a known-dead
					// disk). Redirect every block of the run to its mirror
					// image on the orthogonal stripe group; the failed
					// operation has already marked the node suspect.
					return a.readRunViaMirrors(ctx, first, count, b, p, err)
				}
				for t := 0; t < count; t++ {
					lb := first + int64(t)*int64(width)
					copy(p[(lb-b)*int64(a.bs):(lb-b+1)*int64(a.bs)], buf[t*a.bs:(t+1)*a.bs])
				}
				return nil
			})
			continue
		}
		// Degraded: fetch each block's image individually — images of
		// one column scatter over many mirror groups.
		for t := 0; t < count; t++ {
			lb := first + int64(t)*int64(width)
			fns = append(fns, func(ctx context.Context) error {
				m := a.lay.MirrorLoc(lb)
				mdev := a.devs[m.Disk]
				if !mdev.Healthy() {
					return fmt.Errorf("core: block %d and its image both unavailable: %w", lb, raid.ErrDataLoss)
				}
				return mdev.ReadBlocks(ctx, m.Block, p[(lb-b)*int64(a.bs):(lb-b+1)*int64(a.bs)])
			})
		}
	}
	return par.Do(ctx, fns...)
}

// readRunViaMirrors serves one column run from mirror images after the
// primary read failed with cause. Images of one column scatter over
// many mirror groups, so each block is fetched individually. A block
// whose image is also unavailable fails the whole run with both errors.
func (a *RAIDx) readRunViaMirrors(ctx context.Context, first int64, count int, b int64, p []byte, cause error) error {
	width := int64(a.lay.TotalDisks())
	for t := 0; t < count; t++ {
		lb := first + int64(t)*width
		m := a.lay.MirrorLoc(lb)
		mdev := a.devs[m.Disk]
		if !mdev.Healthy() {
			return fmt.Errorf("core: block %d primary failed (%v) and image unavailable: %w", lb, cause, raid.ErrDataLoss)
		}
		dst := p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
		if err := mdev.ReadBlocks(ctx, m.Block, dst); err != nil {
			return fmt.Errorf("core: block %d primary failed (%v), image read failed: %w", lb, cause, err)
		}
	}
	return nil
}

// WriteBlocks implements raid.Array: data blocks stripe to all disks in
// the foreground; the covered portion of each mirror group is gathered
// and written to its single mirror disk in the background.
func (a *RAIDx) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := a.checkRange(b, p)
	if err != nil {
		return err
	}
	if err := a.checkWritable(b, n); err != nil {
		return err
	}
	fns := a.dataWriteFns(b, n, p)
	fns = append(fns, a.mirrorWriteFns(b, n, p)...)
	return par.Do(ctx, fns...)
}

// dataWriteFns builds the foreground striped data writes (one
// contiguous transfer per disk), skipping failed disks.
func (a *RAIDx) dataWriteFns(b int64, n int, p []byte) []func(context.Context) error {
	width := a.lay.TotalDisks()
	var fns []func(context.Context) error
	for col := 0; col < width; col++ {
		first := b + (int64(col)-b%int64(width)+int64(width))%int64(width)
		if first >= b+int64(n) {
			continue
		}
		count := int((b+int64(n)-1-first)/int64(width)) + 1
		dev := a.devs[col]
		if !dev.Healthy() {
			continue // image carries the data
		}
		fns = append(fns, func(ctx context.Context) error {
			buf := make([]byte, count*a.bs)
			for t := 0; t < count; t++ {
				lb := first + int64(t)*int64(width)
				copy(buf[t*a.bs:(t+1)*a.bs], p[(lb-b)*int64(a.bs):])
			}
			return dev.WriteBlocks(ctx, first/int64(width), buf)
		})
	}
	return fns
}

// mirrorWriteFns builds the mirror-group image writes. Each group's
// covered blocks are logically consecutive, hence physically contiguous
// in the group's slot: one gathered write per group (or per block under
// the ScatterMirror ablation), deferred unless ForegroundMirror is set.
func (a *RAIDx) mirrorWriteFns(b int64, n int, p []byte) []func(context.Context) error {
	gs := int64(a.lay.GroupSize())
	var fns []func(context.Context) error
	for g := b / gs; g*gs < b+int64(n); g++ {
		lo, hi := g*gs, (g+1)*gs
		if lo < b {
			lo = b
		}
		if hi > b+int64(n) {
			hi = b + int64(n)
		}
		mdisk := a.lay.MirrorDisk(g)
		dev := a.devs[mdisk]
		if !dev.Healthy() {
			continue // data copy carries the blocks
		}
		start := a.lay.GroupLoc(g)
		phys := start.Block + (lo - g*gs)
		if a.opt.ScatterMirror {
			for lb := lo; lb < hi; lb++ {
				lb := lb
				fns = append(fns, func(ctx context.Context) error {
					data := p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
					mphys := phys + (lb - lo)
					if a.opt.ForegroundMirror {
						return dev.WriteBlocks(ctx, mphys, data)
					}
					return dev.WriteBlocksBackground(ctx, mphys, data)
				})
			}
			continue
		}
		fns = append(fns, func(ctx context.Context) error {
			chunk := p[(lo-b)*int64(a.bs) : (hi-b)*int64(a.bs)]
			if a.opt.ForegroundMirror {
				return dev.WriteBlocks(ctx, phys, chunk)
			}
			return dev.WriteBlocksBackground(ctx, phys, chunk)
		})
	}
	return fns
}

// checkWritable verifies that every touched block retains at least one
// healthy copy location.
func (a *RAIDx) checkWritable(b int64, n int) error {
	for lb := b; lb < b+int64(n); lb++ {
		dOK := a.devs[a.lay.DataLoc(lb).Disk].Healthy()
		mOK := a.devs[a.lay.MirrorLoc(lb).Disk].Healthy()
		if !dOK && !mOK {
			return fmt.Errorf("core: block %d has no healthy copy location: %w", lb, raid.ErrDataLoss)
		}
	}
	return nil
}

func (a *RAIDx) checkRange(b int64, p []byte) (int, error) {
	if len(p) == 0 || len(p)%a.bs != 0 {
		return 0, fmt.Errorf("core: buffer length %d not a positive multiple of block size %d", len(p), a.bs)
	}
	n := len(p) / a.bs
	if b < 0 || b+int64(n) > a.Blocks() {
		return 0, fmt.Errorf("core: blocks [%d,%d) outside [0,%d)", b, b+int64(n), a.Blocks())
	}
	return n, nil
}

// Flush implements raid.Array: waits for all deferred image writes, so
// the array is fully redundant on return.
func (a *RAIDx) Flush(ctx context.Context) error {
	return par.ForEach(ctx, len(a.devs), func(ctx context.Context, i int) error {
		if !a.devs[i].Healthy() {
			return nil
		}
		return a.devs[i].Flush(ctx)
	})
}

// Rebuild implements raid.Rebuilder: the replaced disk's data half is
// recovered from images on other nodes; its mirror half is regenerated
// from the corresponding data blocks.
func (a *RAIDx) Rebuild(ctx context.Context, idx int) error {
	if idx < 0 || idx >= len(a.devs) {
		return fmt.Errorf("core: rebuild of device %d out of range", idx)
	}
	if !a.devs[idx].Healthy() {
		return fmt.Errorf("core: rebuild target %d is not healthy (replace it first)", idx)
	}
	width := int64(a.lay.TotalDisks())
	// Recover the data half: blocks lb ≡ idx (mod width).
	colBlocks := (a.Blocks() - int64(idx) + width - 1) / width
	if colBlocks > 0 {
		buf := make([]byte, colBlocks*int64(a.bs))
		err := par.ForEach(ctx, int(colBlocks), func(ctx context.Context, t int) error {
			lb := int64(idx) + int64(t)*width
			m := a.lay.MirrorLoc(lb)
			src := a.devs[m.Disk]
			if !src.Healthy() {
				return fmt.Errorf("core: image of block %d unavailable during rebuild: %w", lb, raid.ErrDataLoss)
			}
			return src.ReadBlocks(ctx, m.Block, buf[t*a.bs:(t+1)*a.bs])
		})
		if err != nil {
			return err
		}
		if err := a.devs[idx].WriteBlocks(ctx, 0, buf); err != nil {
			return err
		}
	}
	// Recover the mirror half: every group whose slot lives on idx.
	gs := int64(a.lay.GroupSize())
	groups := a.Blocks() / gs
	for g := int64(0); g < groups; g++ {
		if a.lay.MirrorDisk(g) != idx {
			continue
		}
		start := a.lay.GroupLoc(g)
		chunk := make([]byte, gs*int64(a.bs))
		err := par.ForEach(ctx, int(gs), func(ctx context.Context, j int) error {
			lb := g*gs + int64(j)
			d := a.lay.DataLoc(lb)
			src := a.devs[d.Disk]
			if !src.Healthy() {
				return fmt.Errorf("core: data copy of block %d unavailable during rebuild: %w", lb, raid.ErrDataLoss)
			}
			return src.ReadBlocks(ctx, d.Block, chunk[j*a.bs:(j+1)*a.bs])
		})
		if err != nil {
			return err
		}
		if err := a.devs[idx].WriteBlocks(ctx, start.Block, chunk); err != nil {
			return err
		}
	}
	return nil
}

// Verify implements raid.Verifier: every data block must equal its
// image. Call Flush first if background writes may be pending.
func (a *RAIDx) Verify(ctx context.Context) error {
	data := make([]byte, a.bs)
	image := make([]byte, a.bs)
	for lb := int64(0); lb < a.Blocks(); lb++ {
		d, m := a.lay.DataLoc(lb), a.lay.MirrorLoc(lb)
		if err := a.devs[d.Disk].ReadBlocks(ctx, d.Block, data); err != nil {
			return err
		}
		if err := a.devs[m.Disk].ReadBlocks(ctx, m.Block, image); err != nil {
			return err
		}
		for i := range data {
			if data[i] != image[i] {
				return fmt.Errorf("core: block %d differs from its image at byte %d", lb, i)
			}
		}
	}
	return nil
}
