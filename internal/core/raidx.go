// Package core implements RAID-x, the paper's contribution: a
// distributed disk array built on orthogonal striping and mirroring
// (OSM).
//
// Data blocks stripe across the data halves of all n·k disks exactly
// like RAID-0, so reads and large writes enjoy full-stripe bandwidth.
// Redundancy comes from mirror images, but unlike RAID-10 or chained
// declustering the images are not written block-by-block alongside the
// data: the images of n-1 consecutive blocks form a *mirror group* that
// is gathered into one long contiguous write on the single disk (on the
// single node) that holds none of those blocks, and that write is
// performed in the background by the cooperative disk drivers. Two
// consequences give RAID-x its measured advantage:
//
//   - the small-write problem of RAID-5 disappears — a small write is
//     one foreground data write plus one deferred image write, with no
//     read-modify-write of parity;
//   - mirroring overhead hides behind foreground traffic — the client
//     sees RAID-0 write latency while the array converges to full
//     redundancy asynchronously (Flush forces convergence).
//
// Orthogonality (no block shares a node with its image) preserves
// single-disk — and in an n-by-k array, per-mirror-group — fault
// tolerance: reads fall back to images, writes continue on the
// surviving copy, and Rebuild regenerates a replaced disk from the
// orthogonal copies.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/parity"
	"repro/internal/raid"
	"repro/internal/trace"
)

// segPool recycles the scatter/gather lists the hot read and write paths
// build per column run. Lists are cleared before pooling so a pooled
// list never pins caller buffers.
var segPool = sync.Pool{New: func() any { return new([][]byte) }}

// colSegs builds the gather list addressing the blocks of one column run
// inside p: one segment per logical block first, first+width, ... The
// segments alias p — no bytes are copied; vector-aware devices carry
// them to the wire as-is, and raid.ReadBlocksVec/WriteBlocksVec coalesce
// through one pooled buffer for devices that need a flat transfer.
func (a *RAIDx) colSegs(b, first int64, count int, p []byte) *[][]byte {
	width := int64(a.lay.TotalDisks())
	sp := segPool.Get().(*[][]byte)
	segs := (*sp)[:0]
	for t := 0; t < count; t++ {
		lb := first + int64(t)*width
		segs = append(segs, p[(lb-b)*int64(a.bs):(lb-b+1)*int64(a.bs)])
	}
	*sp = segs
	return sp
}

func putSegs(sp *[][]byte) {
	clear(*sp)
	*sp = (*sp)[:0]
	segPool.Put(sp)
}

// Options tune the engine; the zero value is the paper's design. The
// other settings exist for the ablation benchmarks in DESIGN.md.
type Options struct {
	// ForegroundMirror writes mirror images synchronously, ablating
	// the "hide mirroring overhead in the background" design point.
	ForegroundMirror bool
	// ScatterMirror writes each image block individually instead of
	// gathering a mirror group into one long write, ablating the
	// clustered-image design point.
	ScatterMirror bool
	// BalanceReads lets single-block reads go to the image copy when
	// the data disk's queue is longer — the I/O load balancing the
	// paper's Section 7 lists as the Trojans project's next step.
	BalanceReads bool
	// Obs, when non-nil, receives the engine's metrics: failover and
	// balanced-read counters, per-op latency histograms, queue-depth
	// gauges, and swap/rebuild/degraded-mount events.
	Obs *obs.Registry
	// Trace, when non-nil, records per-request spans: every array op
	// starts a trace that follows the request down through the striped
	// fan-out, CDD calls, and (over the wire) remote disk ops.
	Trace *trace.Tracer
	// Intent, when non-nil, is the array's write-intent log: the write
	// path marks a member's physical regions dirty whenever a copy
	// write is skipped (device suspect/failed) or errors out, so a
	// returning device can be delta-resynced (Resync) instead of fully
	// rebuilt. The log must be sized NewIntentLog-style for this
	// array's geometry (len(devs) devices of Layout().DiskBlocks).
	Intent *intent.Log
	// IntentAhead additionally marks every copy location dirty BEFORE
	// its write is issued (md-style write-ahead intent bitmap), not just
	// on skip/error. With the supervisor persisting intent snapshots,
	// the regions a crash might have left torn or unsynced on ANY copy
	// are recorded on durable storage ahead of the data, so a restarted
	// node knows exactly what to resync without trusting the crashed
	// process to have observed its own failure. Marks are cleared by the
	// repair layer's resync (replaying a clean region is idempotent), so
	// over-marking costs a little replay bandwidth, never correctness.
	IntentAhead bool
}

// coreMetrics are the engine's instruments, resolved once at New;
// without a registry every field is nil and every update a no-op.
type coreMetrics struct {
	failoverReads  *obs.Counter
	balancedMirror *obs.Counter
	balancedData   *obs.Counter
	degradedReads  *obs.Counter
	readLat        *obs.Histogram
	writeLat       *obs.Histogram
	events         *obs.EventLog
}

func newCoreMetrics(r *obs.Registry) coreMetrics {
	if r == nil {
		return coreMetrics{}
	}
	return coreMetrics{
		failoverReads:  r.Counter("raidx.failover_reads"),
		balancedMirror: r.Counter("raidx.balanced_read_mirror"),
		balancedData:   r.Counter("raidx.balanced_read_data"),
		degradedReads:  r.Counter("raidx.degraded_reads"),
		readLat:        r.Histogram("raidx.read_latency"),
		writeLat:       r.Histogram("raidx.write_latency"),
		events:         r.Events(),
	}
}

// RAIDx is the OSM array engine. It satisfies raid.Array,
// raid.Rebuilder, and raid.Verifier.
type RAIDx struct {
	// table is the copy-on-write device table: readers load the current
	// slice once per operation and work on that immutable snapshot,
	// while SwapDev installs a fresh copy under swapMu. A hot-swap
	// during a read storm is therefore race-free — in-flight operations
	// finish against the table they started with, and the next
	// operation sees the spare.
	table  atomic.Pointer[[]raid.Dev]
	swapMu sync.Mutex
	// epoch is the copy-on-write layout view (see epochState). The zero
	// generation delegates to lay's pure arithmetic; grows and shrinks
	// publish override generations here, and an in-flight migration
	// carries both layouts plus its cursor.
	epoch atomic.Pointer[epochState]
	// ioGate closes the migration-start race: writes hold it shared for
	// their duration, Begin{Grow,Shrink} takes it exclusively for the
	// instant it publishes the migrating view, so no write that placed
	// blocks under the pre-migration view is still in flight when the
	// copier starts.
	ioGate sync.RWMutex
	lay    layout.OSM
	bs     int
	opt    Options
	met    coreMetrics
	tracer *trace.Tracer
	// colName holds pre-formatted per-column span subjects ("d3"), so
	// hot-path span recording never formats strings. Copy-on-write like
	// the device table: BeginGrow publishes an extended copy.
	colName atomic.Pointer[[]string]
	// flip alternates the preferred copy for balanced reads so that
	// simultaneous readers split between data and image instead of
	// herding onto whichever side momentarily reports less backlog.
	flip atomic.Uint32
	// intLog is the optional write-intent log (nil: marks are no-ops).
	intLog *intent.Log
	// blankCols is a bitmask of columns whose device answers health
	// probes but holds no trustworthy content: a freshly swapped-in
	// spare is blank until its rebuild completes, so reads of its
	// blocks must route through the mirror images even though the
	// device itself is "up". Writes still land on it — they only make
	// the rebuild's job smaller. Operations load the mask once at
	// entry, like the device table, so one operation's copy choices
	// stay consistent while a rebuild finishes concurrently. Columns
	// >= 64 are never flagged (such arrays keep health-only routing).
	blankCols atomic.Uint64
	// rebuildDone/rebuildTotal expose background-repair progress (in
	// physical blocks of the device under repair) through obs gauges.
	rebuildDone, rebuildTotal atomic.Int64
	// degradedNotify, when set (raid.DegradedNotifier), is called with
	// the number of blocks each degraded read served through a mirror
	// image; the vol package wires it to a per-volume counter.
	degradedNotify func(blocks int)
}

// New builds a RAID-x array over an n-by-k grid of devices: devs[j] is
// global disk j, attached to node j mod nodes (the paper's Figure 3
// arrangement). len(devs) must equal nodes × disksPerNode.
func New(devs []raid.Dev, nodes, disksPerNode int, opt Options) (*RAIDx, error) {
	if len(devs) != nodes*disksPerNode {
		return nil, fmt.Errorf("core: %d devices for a %dx%d array", len(devs), nodes, disksPerNode)
	}
	bs, per, err := checkDevs(devs)
	if err != nil {
		return nil, err
	}
	if per%2 != 0 {
		per-- // use an even number of blocks per disk
	}
	if per/2 < int64(nodes-1) {
		return nil, fmt.Errorf("core: disks too small (%d blocks) for mirror groups of %d", per, nodes-1)
	}
	a := &RAIDx{
		lay:    layout.NewOSM(nodes, disksPerNode, per),
		bs:     bs,
		opt:    opt,
		met:    newCoreMetrics(opt.Obs),
		tracer: opt.Trace,
		intLog: opt.Intent,
	}
	a.setColNames(len(devs))
	owned := append([]raid.Dev(nil), devs...)
	a.table.Store(&owned)
	a.epoch.Store(&epochState{cur: layout.NewEpoch(a.lay)})
	a.finishInit(devs)
	return a, nil
}

// finishInit registers the obs gauges and flags a degraded mount; the
// construction tail shared by New and NewAtEpoch. Retired or spare
// slots in devs may be nil.
func (a *RAIDx) finishInit(devs []raid.Dev) {
	if a.opt.Obs != nil {
		a.opt.Obs.RegisterGauge("raidx.backlog_us", func() int64 {
			var sum time.Duration
			for _, d := range a.devices() {
				if d != nil {
					sum += raid.BacklogOf(d)
				}
			}
			return int64(sum / time.Microsecond)
		})
		a.opt.Obs.RegisterGauge("raidx.bg_backlog_us", func() int64 {
			var sum time.Duration
			for _, d := range a.devices() {
				if d != nil {
					sum += raid.BgBacklogOf(d)
				}
			}
			return int64(sum / time.Microsecond)
		})
		a.opt.Obs.RegisterGauge("raidx.rebuild_done_blocks", a.rebuildDone.Load)
		a.opt.Obs.RegisterGauge("raidx.rebuild_total_blocks", a.rebuildTotal.Load)
	}
	// A degraded mount — building the array over members that are
	// already unhealthy — is a state worth flagging on the event log.
	down := 0
	for _, d := range devs {
		if d != nil && !d.Healthy() {
			down++
		}
	}
	if down > 0 {
		a.met.events.Append(obs.EventDegradedMount, "raidx",
			fmt.Sprintf("%d of %d devices unhealthy at mount", down, len(devs)))
	}
}

func checkDevs(devs []raid.Dev) (int, int64, error) {
	bs := devs[0].BlockSize()
	per := devs[0].NumBlocks()
	for i, d := range devs {
		if d.BlockSize() != bs {
			return 0, 0, fmt.Errorf("core: device %d block size %d != %d", i, d.BlockSize(), bs)
		}
		if d.NumBlocks() < per {
			per = d.NumBlocks()
		}
	}
	return bs, per, nil
}

// setColNames publishes a fresh pre-formatted name table covering n
// columns.
func (a *RAIDx) setColNames(n int) {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i)
	}
	a.colName.Store(&names)
}

// col returns the pre-formatted span subject for column i.
func (a *RAIDx) col(i int) string {
	names := *a.colName.Load()
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("d%d", i)
}

// readable reports whether column col may serve reads under the given
// blank-column mask: the device must answer and must not be a blank
// spare whose rebuild has not completed.
func readable(devs []raid.Dev, blank uint64, col int) bool {
	return (col >= 64 || blank&(1<<uint(col)) == 0) && devs[col] != nil && devs[col].Healthy()
}

// setBlank marks or clears column col in the blank mask.
func (a *RAIDx) setBlank(col int, blank bool) {
	if col >= 64 {
		return
	}
	for {
		old := a.blankCols.Load()
		next := old &^ (1 << uint(col))
		if blank {
			next = old | 1<<uint(col)
		}
		if a.blankCols.CompareAndSwap(old, next) {
			return
		}
	}
}

// devices returns the current device table snapshot. Operations load it
// once at entry and pass it down, so a concurrent SwapDev cannot change
// the set of devices an operation addresses mid-flight.
func (a *RAIDx) devices() []raid.Dev { return *a.table.Load() }

// Devices returns the current device-table snapshot. The slice is the
// engine's own copy-on-write table: treat it as read-only. The repair
// supervisor polls it for member health.
func (a *RAIDx) Devices() []raid.Dev { return a.devices() }

// Intent exposes the array's write-intent log (nil when not configured).
func (a *RAIDx) Intent() *intent.Log { return a.intLog }

// Layout exposes the OSM address arithmetic (used by the checkpointing
// module and the layout-printing tool).
func (a *RAIDx) Layout() layout.OSM { return a.lay }

// SwapDev implements raid.DevSwapper: it replaces member idx (typically
// a failed disk) with a hot spare of identical geometry and returns the
// previous device. The new device is blank until Rebuild runs.
//
// The swap installs a fresh copy of the device table, so operations
// already in flight finish against the old table while everything
// started afterwards sees the spare; concurrent swaps serialize.
func (a *RAIDx) SwapDev(idx int, dev raid.Dev) (raid.Dev, error) {
	a.swapMu.Lock()
	defer a.swapMu.Unlock()
	cur := a.devices()
	if idx < 0 || idx >= len(cur) {
		return nil, fmt.Errorf("core: swap of device %d out of range", idx)
	}
	if dev.BlockSize() != a.bs || dev.NumBlocks() < a.lay.DiskBlocks {
		return nil, fmt.Errorf("core: spare geometry %dx%d does not match %dx%d",
			dev.BlockSize(), dev.NumBlocks(), a.bs, a.lay.DiskBlocks)
	}
	next := append([]raid.Dev(nil), cur...)
	old := next[idx]
	next[idx] = dev
	// Flag the column blank BEFORE publishing the table: no reader may
	// ever observe the spare as a valid read source before its rebuild.
	a.setBlank(idx, true)
	a.table.Store(&next)
	a.met.events.Append(obs.EventSwap, fmt.Sprintf("raidx/d%d", idx), "hot spare installed")
	return old, nil
}

// Tracer exposes the engine's tracer (nil when tracing is off).
func (a *RAIDx) Tracer() *trace.Tracer { return a.tracer }

// Name implements raid.Array.
func (a *RAIDx) Name() string { return "raidx" }

// BlockSize implements raid.Array.
func (a *RAIDx) BlockSize() int { return a.bs }

// Blocks implements raid.Array.
func (a *RAIDx) Blocks() int64 { return a.lay.DataBlocks() }

// ReadBlocks implements raid.Array: a parallel RAID-0-style read over
// the data halves, with per-block fallback to mirror images for blocks
// on failed disks.
func (a *RAIDx) ReadBlocks(ctx context.Context, b int64, p []byte) (err error) {
	n, err := a.checkRange(b, p)
	if err != nil {
		return err
	}
	ctx, root := a.tracer.StartRoot(ctx, "raidx.read", "raidx")
	root.Val = int64(len(p))
	defer func() { root.End(err) }()
	start := time.Now()
	defer func() { a.met.readLat.Observe(time.Since(start)) }()
	if es := a.epoch.Load(); !es.plain() {
		// Overridden placements or an in-flight migration: take the
		// general epoch-aware path.
		return a.readEpoch(ctx, es, b, n, p)
	}
	devs := a.devices()
	blank := a.blankCols.Load()
	width := a.lay.TotalDisks()
	var fns []func(context.Context) error
	for col := 0; col < width; col++ {
		first := b + (int64(col)-b%int64(width)+int64(width))%int64(width)
		if first >= b+int64(n) {
			continue
		}
		count := int((b+int64(n)-1-first)/int64(width)) + 1
		dev := devs[col]
		if readable(devs, blank, col) {
			// Load-balanced single-block read: alternate the preferred
			// copy, then defer to whichever disk has less queued work.
			if a.opt.BalanceReads && count == 1 {
				m := a.lay.MirrorLoc(first)
				mdev := devs[m.Disk]
				if readable(devs, blank, m.Disk) {
					db, mb := raid.BacklogOf(dev), raid.BacklogOf(mdev)
					useMirror := mb < db || (mb == db && a.flip.Add(1)%2 == 0)
					if useMirror {
						a.met.balancedMirror.Inc()
						fns = append(fns, func(ctx context.Context) error {
							dst := p[(first-b)*int64(a.bs) : (first-b+1)*int64(a.bs)]
							err := mdev.ReadBlocks(ctx, m.Block, dst)
							if err == nil || ctx.Err() != nil {
								return err
							}
							// Failover to the data copy.
							a.noteFailover(fmt.Sprintf("raidx/d%d", m.Disk), err)
							fctx, fh := trace.Start(ctx, "raidx.failover", a.col(m.Disk))
							derr := dev.ReadBlocks(fctx, first/int64(width), dst)
							fh.End(derr)
							if derr == nil {
								return nil
							}
							return err
						})
						continue
					}
					a.met.balancedData.Inc()
				}
			}
			col := col
			fns = append(fns, func(ctx context.Context) (err error) {
				ctx, ch := trace.Start(ctx, "raidx.col-read", a.col(col))
				ch.Val = int64(count * a.bs)
				defer func() { ch.End(err) }()
				// Scatter the column run straight into p — no staging
				// buffer, no copy-out loop. Vector-aware devices land
				// each block in place; others coalesce through one
				// pooled buffer inside ReadBlocksVec.
				segs := a.colSegs(b, first, count, p)
				rerr := raid.ReadBlocksVec(ctx, dev, first/int64(width), *segs)
				putSegs(segs)
				if rerr != nil {
					if ctx.Err() != nil {
						return rerr
					}
					// Read-failover: the primary errored or timed out
					// mid-run (a flaky/partitioned node, not a known-dead
					// disk). Redirect every block of the run to its mirror
					// image on the orthogonal stripe group; the failed
					// operation has already marked the node suspect. The
					// mirrors rewrite every block of the run, so bytes a
					// partial scatter may have landed in p are overwritten.
					a.noteFailover(fmt.Sprintf("raidx/d%d", col), rerr)
					fctx, fh := trace.Start(ctx, "raidx.failover", a.col(col))
					ferr := a.readRunViaMirrors(fctx, devs, blank, first, count, b, p, rerr)
					fh.End(ferr)
					return ferr
				}
				return nil
			})
			continue
		}
		// Degraded: fetch each block's image individually — images of
		// one column scatter over many mirror groups.
		for t := 0; t < count; t++ {
			lb := first + int64(t)*int64(width)
			fns = append(fns, func(ctx context.Context) (err error) {
				a.met.degradedReads.Inc()
				if a.degradedNotify != nil {
					a.degradedNotify(1)
				}
				m := a.lay.MirrorLoc(lb)
				ctx, dh := trace.Start(ctx, "raidx.degraded-read", a.col(m.Disk))
				defer func() { dh.End(err) }()
				mdev := devs[m.Disk]
				if !readable(devs, blank, m.Disk) {
					return fmt.Errorf("core: block %d and its image both unavailable: %w", lb, raid.ErrDataLoss)
				}
				return mdev.ReadBlocks(ctx, m.Block, p[(lb-b)*int64(a.bs):(lb-b+1)*int64(a.bs)])
			})
		}
	}
	return par.Do(ctx, fns...)
}

// noteFailover records a read redirected from a failing primary copy.
func (a *RAIDx) noteFailover(subject string, cause error) {
	a.met.failoverReads.Inc()
	a.met.events.Append(obs.EventFailover, subject, cause.Error())
}

// readRunViaMirrors serves one column run from mirror images after the
// primary read failed with cause. Images of one column scatter over
// many mirror groups, so each block is fetched individually. A block
// whose image is also unavailable fails the whole run with both errors.
func (a *RAIDx) readRunViaMirrors(ctx context.Context, devs []raid.Dev, blank uint64, first int64, count int, b int64, p []byte, cause error) error {
	width := int64(a.lay.TotalDisks())
	for t := 0; t < count; t++ {
		lb := first + int64(t)*width
		m := a.lay.MirrorLoc(lb)
		mdev := devs[m.Disk]
		if !readable(devs, blank, m.Disk) {
			return fmt.Errorf("core: block %d primary failed (%v) and image unavailable: %w", lb, cause, raid.ErrDataLoss)
		}
		dst := p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
		if err := mdev.ReadBlocks(ctx, m.Block, dst); err != nil {
			return fmt.Errorf("core: block %d primary failed (%v), image read failed: %w", lb, cause, err)
		}
	}
	return nil
}

// WriteBlocks implements raid.Array: data blocks stripe to all disks in
// the foreground; the covered portion of each mirror group is gathered
// and written to its single mirror disk in the background.
func (a *RAIDx) WriteBlocks(ctx context.Context, b int64, p []byte) (err error) {
	n, err := a.checkRange(b, p)
	if err != nil {
		return err
	}
	ctx, root := a.tracer.StartRoot(ctx, "raidx.write", "raidx")
	root.Val = int64(len(p))
	defer func() { root.End(err) }()
	start := time.Now()
	defer func() { a.met.writeLat.Observe(time.Since(start)) }()
	// Shared-mode gate: a migration publishes its view only after every
	// write that loaded the pre-migration layout has drained.
	a.ioGate.RLock()
	defer a.ioGate.RUnlock()
	if es := a.epoch.Load(); !es.plain() {
		return a.writeEpoch(ctx, b, n, p)
	}
	devs := a.devices()
	if err := a.checkWritable(devs, b, n); err != nil {
		return err
	}
	fns := a.dataWriteFns(devs, b, n, p)
	fns = append(fns, a.mirrorWriteFns(devs, b, n, p)...)
	return par.Do(ctx, fns...)
}

// dataWriteFns builds the foreground striped data writes (one
// contiguous transfer per disk), skipping failed disks.
func (a *RAIDx) dataWriteFns(devs []raid.Dev, b int64, n int, p []byte) []func(context.Context) error {
	width := a.lay.TotalDisks()
	var fns []func(context.Context) error
	for col := 0; col < width; col++ {
		first := b + (int64(col)-b%int64(width)+int64(width))%int64(width)
		if first >= b+int64(n) {
			continue
		}
		count := int((b+int64(n)-1-first)/int64(width)) + 1
		dev := devs[col]
		phys := first / int64(width)
		if a.opt.IntentAhead {
			// Write-ahead mark: the region is in flight, so a crash here
			// must treat it as possibly torn until a resync confirms it.
			a.intLog.MarkRange(col, phys, int64(count))
		}
		if !dev.Healthy() {
			// The image carries the data; log the intent so a delta
			// resync can replay just these blocks when the device
			// returns.
			a.intLog.MarkRange(col, phys, int64(count))
			continue
		}
		col := col
		fns = append(fns, func(ctx context.Context) (err error) {
			ctx, ch := trace.Start(ctx, "raidx.col-write", a.col(col))
			ch.Val = int64(count * a.bs)
			defer func() { ch.End(err) }()
			// Gather the column run from p — no staging buffer, no
			// copy-in loop. Vector-aware devices put the segments on the
			// wire as one vectored frame; others coalesce through one
			// pooled buffer inside WriteBlocksVec.
			segs := a.colSegs(b, first, count, p)
			err = raid.WriteBlocksVec(ctx, dev, phys, *segs)
			putSegs(segs)
			if err != nil {
				// The run's on-disk state is unknown (partial landing,
				// cancelled sibling, device died mid-write): mark it
				// dirty so repair replays it from the surviving copy.
				a.intLog.MarkRange(col, phys, int64(count))
			}
			return err
		})
	}
	return fns
}

// mirrorWriteFns builds the mirror-group image writes. Each group's
// covered blocks are logically consecutive, hence physically contiguous
// in the group's slot: one gathered write per group (or per block under
// the ScatterMirror ablation), deferred unless ForegroundMirror is set.
func (a *RAIDx) mirrorWriteFns(devs []raid.Dev, b int64, n int, p []byte) []func(context.Context) error {
	gs := int64(a.lay.GroupSize())
	var fns []func(context.Context) error
	for g := b / gs; g*gs < b+int64(n); g++ {
		lo, hi := g*gs, (g+1)*gs
		if lo < b {
			lo = b
		}
		if hi > b+int64(n) {
			hi = b + int64(n)
		}
		mdisk := a.lay.MirrorDisk(g)
		dev := devs[mdisk]
		start := a.lay.GroupLoc(g)
		phys := start.Block + (lo - g*gs)
		if a.opt.IntentAhead {
			a.intLog.MarkRange(mdisk, phys, hi-lo)
		}
		if !dev.Healthy() {
			// The data copy carries the blocks; log the skipped image
			// region so a returning mirror is delta-resynced.
			a.intLog.MarkRange(mdisk, phys, hi-lo)
			continue
		}
		if a.opt.ScatterMirror {
			for lb := lo; lb < hi; lb++ {
				lb := lb
				fns = append(fns, func(ctx context.Context) error {
					data := p[(lb-b)*int64(a.bs) : (lb-b+1)*int64(a.bs)]
					mphys := phys + (lb - lo)
					var err error
					if a.opt.ForegroundMirror {
						err = dev.WriteBlocks(ctx, mphys, data)
					} else {
						err = dev.WriteBlocksBackground(ctx, mphys, data)
					}
					if err != nil {
						a.intLog.MarkRange(mdisk, mphys, 1)
					}
					return err
				})
			}
			continue
		}
		fns = append(fns, func(ctx context.Context) (err error) {
			ctx, mh := trace.Start(ctx, "raidx.mirror-write", a.col(mdisk))
			mh.Val = (hi - lo) * int64(a.bs)
			defer func() { mh.End(err) }()
			chunk := p[(lo-b)*int64(a.bs) : (hi-b)*int64(a.bs)]
			if a.opt.ForegroundMirror {
				err = dev.WriteBlocks(ctx, phys, chunk)
			} else {
				err = dev.WriteBlocksBackground(ctx, phys, chunk)
			}
			if err != nil {
				// The image may be missing or torn: record the intent so
				// repair re-copies it from the data blocks.
				a.intLog.MarkRange(mdisk, phys, hi-lo)
			}
			return err
		})
	}
	return fns
}

// checkWritable verifies that every touched block retains at least one
// healthy copy location.
func (a *RAIDx) checkWritable(devs []raid.Dev, b int64, n int) error {
	for lb := b; lb < b+int64(n); lb++ {
		dOK := devs[a.lay.DataLoc(lb).Disk].Healthy()
		mOK := devs[a.lay.MirrorLoc(lb).Disk].Healthy()
		if !dOK && !mOK {
			return fmt.Errorf("core: block %d has no healthy copy location: %w", lb, raid.ErrDataLoss)
		}
	}
	return nil
}

func (a *RAIDx) checkRange(b int64, p []byte) (int, error) {
	if len(p) == 0 || len(p)%a.bs != 0 {
		return 0, fmt.Errorf("core: buffer length %d not a positive multiple of block size %d", len(p), a.bs)
	}
	n := len(p) / a.bs
	if b < 0 || b+int64(n) > a.Blocks() {
		return 0, fmt.Errorf("core: blocks [%d,%d) outside [0,%d)", b, b+int64(n), a.Blocks())
	}
	return n, nil
}

// Flush implements raid.Array: waits for all deferred image writes, so
// the array is fully redundant on return.
func (a *RAIDx) Flush(ctx context.Context) (err error) {
	ctx, root := a.tracer.StartRoot(ctx, "raidx.flush", "raidx")
	defer func() { root.End(err) }()
	devs := a.devices()
	return par.ForEach(ctx, len(devs), func(ctx context.Context, i int) error {
		if devs[i] == nil || !devs[i].Healthy() {
			return nil
		}
		return devs[i].Flush(ctx)
	})
}

// rebuildChunk bounds repair I/O: blocks per recovered write. A whole
// column written in one call is tens of megabytes at realistic disk
// sizes, which overflows the transport frame limit when the target is a
// remote device (and holds the entire column in memory).
const rebuildChunk = 128

// Rebuild implements raid.Rebuilder: the replaced disk's data half is
// recovered from images on other nodes; its mirror half is regenerated
// from the corresponding data blocks. Equivalent to RebuildFrom with no
// checkpoint and no pacing.
func (a *RAIDx) Rebuild(ctx context.Context, idx int) error {
	return a.RebuildFrom(ctx, idx, nil, nil)
}

// RebuildFrom is Rebuild with a resumable checkpoint and optional
// pacing. prog, when non-nil, is read to skip work already done by an
// interrupted run and updated after every landed chunk, so a caller
// that keeps the same RebuildProgress across attempts resumes instead
// of restarting; pass a zeroed RebuildProgress (or nil) for a fresh
// rebuild. pace, when non-nil, is called after each chunk with the
// bytes just copied — returning an error aborts the rebuild with the
// checkpoint intact.
func (a *RAIDx) RebuildFrom(ctx context.Context, idx int, prog *RebuildProgress, pace PaceFunc) (err error) {
	devs := a.devices()
	if idx < 0 || idx >= len(devs) {
		return fmt.Errorf("core: rebuild of device %d out of range", idx)
	}
	if _, _, active := a.Migrating(); active {
		return ErrMigrationActive
	}
	if a.ColumnRetired(idx) {
		return ErrRetiredColumn
	}
	if !devs[idx].Healthy() {
		return fmt.Errorf("core: rebuild target %d is not healthy (replace it first)", idx)
	}
	if prog == nil {
		prog = &RebuildProgress{}
	}
	if ep := a.Epoch(); !ep.Trivial() {
		return a.rebuildEpochFrom(ctx, idx, ep, prog, pace)
	}
	if prog.Epoch != 0 {
		// Checkpoint cut under a different layout generation: placements
		// moved, so the recorded progress no longer names the same blocks.
		*prog = RebuildProgress{}
	}
	blank := a.blankCols.Load()
	ctx, root := a.tracer.StartRoot(ctx, "raidx.rebuild", a.col(idx))
	defer func() { root.End(err) }()
	subject := fmt.Sprintf("raidx/d%d", idx)
	detail := ""
	if prog.DataDone > 0 || prog.GroupsDone > 0 {
		detail = fmt.Sprintf("resume data=%d groups=%d", prog.DataDone, prog.GroupsDone)
	}
	a.met.events.Append(obs.EventRebuildStart, subject, detail)
	defer func() {
		detail := "ok"
		if err != nil {
			detail = err.Error()
		}
		a.met.events.Append(obs.EventRebuildEnd, subject, detail)
	}()
	width := int64(a.lay.TotalDisks())
	gs := int64(a.lay.GroupSize())
	colBlocks := (a.Blocks() - int64(idx) + width - 1) / width
	if colBlocks < 0 {
		colBlocks = 0
	}
	prog.DataTotal = colBlocks
	prog.GroupsTotal = 0
	for g := int64(0); g < a.Blocks()/gs; g++ {
		if a.lay.MirrorDisk(g) == idx {
			prog.GroupsTotal++
		}
	}
	a.rebuildTotal.Store(prog.DataTotal + prog.GroupsTotal*gs)
	a.rebuildDone.Store(prog.done(gs))
	// Recover the data half: blocks lb ≡ idx (mod width), in bounded
	// chunks. A checkpointed DataDone is rounded down to a chunk
	// boundary — re-copying a partial chunk is idempotent, trusting it
	// is not.
	if colBlocks > 0 {
		start := prog.DataDone
		if start > colBlocks {
			start = colBlocks
		}
		start -= start % rebuildChunk
		n := colBlocks
		if n > rebuildChunk {
			n = rebuildChunk
		}
		// One pooled scratch buffer serves every chunk of the column.
		buf := bufpool.Get(int(n) * a.bs)
		defer bufpool.Put(buf)
		for c := start; c < colBlocks; c += rebuildChunk {
			n := colBlocks - c
			if n > rebuildChunk {
				n = rebuildChunk
			}
			part := buf[:n*int64(a.bs)]
			err := par.ForEach(ctx, int(n), func(ctx context.Context, t int) error {
				lb := int64(idx) + (c+int64(t))*width
				m := a.lay.MirrorLoc(lb)
				src := devs[m.Disk]
				if !readable(devs, blank, m.Disk) {
					return fmt.Errorf("core: image of block %d unavailable during rebuild: %w", lb, raid.ErrDataLoss)
				}
				return src.ReadBlocks(ctx, m.Block, part[t*a.bs:(t+1)*a.bs])
			})
			if err != nil {
				return err
			}
			if err := devs[idx].WriteBlocks(ctx, c, part); err != nil {
				return err
			}
			prog.DataDone = c + n
			a.rebuildDone.Store(prog.done(gs))
			if pace != nil {
				if err := pace(ctx, int(n)*a.bs); err != nil {
					return err
				}
			}
		}
		prog.DataDone = colBlocks
	}
	// Recover the mirror half: every group whose slot lives on idx. One
	// pooled scratch buffer is reused across all the groups — each
	// gathered group write lands before the next group's reads refill it.
	// A checkpoint skips the first GroupsDone owned groups (group order
	// is deterministic).
	groups := a.Blocks() / gs
	chunk := bufpool.Get(int(gs) * a.bs)
	defer bufpool.Put(chunk)
	owned := int64(0)
	for g := int64(0); g < groups; g++ {
		if a.lay.MirrorDisk(g) != idx {
			continue
		}
		owned++
		if owned <= prog.GroupsDone {
			continue // an interrupted run already landed this group
		}
		start := a.lay.GroupLoc(g)
		err := par.ForEach(ctx, int(gs), func(ctx context.Context, j int) error {
			lb := g*gs + int64(j)
			d := a.lay.DataLoc(lb)
			src := devs[d.Disk]
			if !readable(devs, blank, d.Disk) {
				return fmt.Errorf("core: data copy of block %d unavailable during rebuild: %w", lb, raid.ErrDataLoss)
			}
			return src.ReadBlocks(ctx, d.Block, chunk[j*a.bs:(j+1)*a.bs])
		})
		if err != nil {
			return err
		}
		if err := devs[idx].WriteBlocks(ctx, start.Block, chunk); err != nil {
			return err
		}
		prog.GroupsDone = owned
		a.rebuildDone.Store(prog.done(gs))
		if pace != nil {
			if err := pace(ctx, int(gs)*a.bs); err != nil {
				return err
			}
		}
	}
	// A fresh, complete copy supersedes any intents logged against the
	// device while it was down, and the column is a read source again.
	a.intLog.ClearDev(idx)
	a.setBlank(idx, false)
	return nil
}

// SetDegradedNotify implements raid.DegradedNotifier: fn is called
// with the number of blocks each degraded read served through mirror
// images. Set it before the array takes I/O; fn must be safe for
// concurrent calls.
func (a *RAIDx) SetDegradedNotify(fn func(blocks int)) { a.degradedNotify = fn }

// Verify implements raid.Verifier: every data block must equal its
// image. Call Flush first if background writes may be pending.
func (a *RAIDx) Verify(ctx context.Context) (err error) {
	ctx, root := a.tracer.StartRoot(ctx, "raidx.verify", "raidx")
	defer func() { root.End(err) }()
	devs := a.devices()
	es := a.epoch.Load()
	data := bufpool.Get(a.bs)
	image := bufpool.Get(a.bs)
	defer bufpool.Put(data)
	defer bufpool.Put(image)
	for lb := int64(0); lb < a.Blocks(); lb++ {
		d, m := es.dataLoc(lb), es.mirrorLoc(lb)
		if err := devs[d.Disk].ReadBlocks(ctx, d.Block, data); err != nil {
			return err
		}
		if err := devs[m.Disk].ReadBlocks(ctx, m.Block, image); err != nil {
			return err
		}
		if i := parity.FirstDiff(data, image); i >= 0 {
			return fmt.Errorf("core: block %d differs from its image at byte %d", lb, i)
		}
	}
	return nil
}
