package raid_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/raid"
)

func afraidRig(t *testing.T) (*raid.AFRAID, []*diskHandle) {
	t.Helper()
	devs, raw := mkDisks(4, 32)
	a, err := raid.NewAFRAID(devs)
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*diskHandle, len(raw))
	for i, d := range raw {
		hs[i] = &diskHandle{d}
	}
	return a, hs
}

// diskHandle just adapts *disk.Disk for readable failure injection.
type diskHandle struct{ d failer }

type failer interface {
	Fail()
	Replace() error
}

func TestAFRAIDRoundTripAndWindow(t *testing.T) {
	a, _ := afraidRig(t)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(1)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if a.DirtyStripes() == 0 {
		t.Fatal("writes opened no redundancy window")
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if a.DirtyStripes() != 0 {
		t.Fatalf("window not closed by flush: %d dirty", a.DirtyStripes())
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("parity wrong after flush: %v", err)
	}
}

func TestAFRAIDDegradedReadOutsideWindow(t *testing.T) {
	a, hs := afraidRig(t)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(2)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	hs[1].d.Fail()
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("degraded read with clean parity: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read wrong data")
	}
}

// TestAFRAIDWindowIsHonest: a failure inside the redundancy window must
// surface as data loss, never as silently wrong data.
func TestAFRAIDWindowIsHonest(t *testing.T) {
	a, hs := afraidRig(t)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(3)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	// No flush: everything is inside the window. Lose a disk.
	hs[2].d.Fail()
	err := a.ReadBlocks(ctx, 0, make([]byte, len(data)))
	if !errors.Is(err, raid.ErrDataLoss) {
		t.Fatalf("window read: got %v, want ErrDataLoss", err)
	}
	// Rebuild must refuse too.
	if err := hs[2].d.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(ctx, 2); !errors.Is(err, raid.ErrDataLoss) {
		t.Fatalf("rebuild in window: got %v, want ErrDataLoss", err)
	}
}

func TestAFRAIDRebuildAfterFlush(t *testing.T) {
	a, hs := afraidRig(t)
	ctx := context.Background()
	data := make([]byte, int(a.Blocks())*a.BlockSize())
	rand.New(rand.NewSource(4)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	hs[0].d.Fail()
	if err := hs[0].d.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after rebuild: %v", err)
	}
	got := make([]byte, len(data))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after rebuild")
	}
}

// TestAFRAIDSmallWriteIsSingleIO: unlike RAID-5's 4-I/O small write,
// AFRAID's critical path is one data write.
func TestAFRAIDSmallWriteIsSingleIO(t *testing.T) {
	devs, raw := mkDisks(4, 32)
	a, err := raid.NewAFRAID(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	for _, d := range raw {
		r, w, _, _ := d.Stats()
		reads += r
		writes += w
	}
	if reads != 0 || writes != 1 {
		t.Fatalf("small write cost %d reads + %d writes, want 0 + 1", reads, writes)
	}
}
