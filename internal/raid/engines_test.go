package raid_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

const testBS = 256

// mkDisks builds n pure-data disks of the given capacity.
func mkDisks(n int, blocks int64) ([]raid.Dev, []*disk.Disk) {
	devs := make([]raid.Dev, n)
	raw := make([]*disk.Disk, n)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(testBS, blocks), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	return devs, raw
}

// engineCase describes one array architecture under test.
type engineCase struct {
	name string
	// build constructs the array over fresh disks and reports the
	// disks for failure injection.
	build func(t *testing.T) (raid.Array, []*disk.Disk)
	// redundant marks architectures that survive one disk failure.
	redundant bool
	// tolerates is the number of simultaneous disk failures the
	// architecture survives (0 means 1 for redundant arrays).
	tolerates int
}

func engineCases() []engineCase {
	return []engineCase{
		{"raid0", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(4, 64)
			a, err := raid.NewRAID0(devs)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, false, 0},
		{"raid5", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(4, 64)
			a, err := raid.NewRAID5(devs)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 1},
		{"raid10", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(4, 64)
			a, err := raid.NewRAID10(devs)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 1},
		{"chained", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(4, 64)
			a, err := raid.NewChained(devs)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 1},
		{"raidx", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(4, 64)
			a, err := core.New(devs, 4, 1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 1},
		{"raidx-4x3", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(12, 24)
			a, err := core.New(devs, 4, 3, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 0},
		{"rs-5+1", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(6, 64)
			a, err := raid.NewRS(devs, 1)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 1},
		{"rs-6+2", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(8, 64)
			a, err := raid.NewRS(devs, 2)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 2},
		{"rs-4+3", func(t *testing.T) (raid.Array, []*disk.Disk) {
			devs, raw := mkDisks(7, 32)
			a, err := raid.NewRS(devs, 3)
			if err != nil {
				t.Fatal(err)
			}
			return a, raw
		}, true, 3},
	}
}

func fill(p []byte, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Read(p)
}

func TestEnginesRoundTrip(t *testing.T) {
	for _, ec := range engineCases() {
		t.Run(ec.name, func(t *testing.T) {
			a, _ := ec.build(t)
			ctx := context.Background()
			if a.Blocks() < 8 {
				t.Fatalf("tiny array: %d blocks", a.Blocks())
			}
			// Whole-array write, then read back in assorted chunks.
			all := make([]byte, a.Blocks()*int64(testBS))
			fill(all, 42)
			if err := a.WriteBlocks(ctx, 0, all); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []struct {
				b int64
				n int64
			}{{0, a.Blocks()}, {1, 5}, {a.Blocks() - 3, 3}, {7, 1}} {
				got := make([]byte, chunk.n*int64(testBS))
				if err := a.ReadBlocks(ctx, chunk.b, got); err != nil {
					t.Fatalf("read [%d,+%d): %v", chunk.b, chunk.n, err)
				}
				want := all[chunk.b*int64(testBS) : (chunk.b+chunk.n)*int64(testBS)]
				if !bytes.Equal(got, want) {
					t.Fatalf("read [%d,+%d) mismatch", chunk.b, chunk.n)
				}
			}
		})
	}
}

func TestEnginesRejectBadRanges(t *testing.T) {
	for _, ec := range engineCases() {
		t.Run(ec.name, func(t *testing.T) {
			a, _ := ec.build(t)
			ctx := context.Background()
			if err := a.ReadBlocks(ctx, -1, make([]byte, testBS)); err == nil {
				t.Error("negative block accepted")
			}
			if err := a.ReadBlocks(ctx, a.Blocks(), make([]byte, testBS)); err == nil {
				t.Error("past-end read accepted")
			}
			if err := a.WriteBlocks(ctx, 0, make([]byte, testBS+1)); err == nil {
				t.Error("unaligned buffer accepted")
			}
			if err := a.WriteBlocks(ctx, 0, nil); err == nil {
				t.Error("empty buffer accepted")
			}
		})
	}
}

// TestEnginesShadowModel drives every engine with a random operation
// sequence and compares against a flat in-memory reference after every
// read. This is the main correctness property test.
func TestEnginesShadowModel(t *testing.T) {
	for _, ec := range engineCases() {
		t.Run(ec.name, func(t *testing.T) {
			a, _ := ec.build(t)
			ctx := context.Background()
			shadow := make([]byte, a.Blocks()*int64(testBS))
			rng := rand.New(rand.NewSource(7))
			for op := 0; op < 400; op++ {
				b := rng.Int63n(a.Blocks())
				maxN := a.Blocks() - b
				if maxN > 9 {
					maxN = 9
				}
				n := 1 + rng.Int63n(maxN)
				buf := make([]byte, n*int64(testBS))
				if rng.Intn(2) == 0 {
					rng.Read(buf)
					if err := a.WriteBlocks(ctx, b, buf); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					copy(shadow[b*int64(testBS):], buf)
				} else {
					if err := a.ReadBlocks(ctx, b, buf); err != nil {
						t.Fatalf("op %d read: %v", op, err)
					}
					if !bytes.Equal(buf, shadow[b*int64(testBS):(b+n)*int64(testBS)]) {
						t.Fatalf("op %d: read [%d,+%d) diverged from shadow", op, b, n)
					}
				}
			}
		})
	}
}

// TestEnginesRedundancyConsistent verifies redundancy invariants after
// a random write burst: mirror copies agree, parity XORs to zero.
func TestEnginesRedundancyConsistent(t *testing.T) {
	for _, ec := range engineCases() {
		if !ec.redundant {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			a, _ := ec.build(t)
			v, ok := a.(raid.Verifier)
			if !ok {
				t.Fatalf("%s does not implement Verifier", ec.name)
			}
			ctx := context.Background()
			rng := rand.New(rand.NewSource(3))
			for op := 0; op < 120; op++ {
				b := rng.Int63n(a.Blocks())
				n := 1 + rng.Int63n(4)
				if b+n > a.Blocks() {
					n = a.Blocks() - b
				}
				buf := make([]byte, n*int64(testBS))
				rng.Read(buf)
				if err := a.WriteBlocks(ctx, b, buf); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			if err := v.Verify(ctx); err != nil {
				t.Fatalf("redundancy check failed: %v", err)
			}
		})
	}
}

// TestEnginesDegradedReadAfterFailure: write, fail each disk in turn,
// and verify all data remains readable through the redundancy.
func TestEnginesDegradedReadAfterFailure(t *testing.T) {
	for _, ec := range engineCases() {
		if !ec.redundant {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			ctx := context.Background()
			for victim := 0; ; victim++ {
				a, raw := ec.build(t)
				if victim >= len(raw) {
					break
				}
				all := make([]byte, a.Blocks()*int64(testBS))
				fill(all, int64(100+victim))
				if err := a.WriteBlocks(ctx, 0, all); err != nil {
					t.Fatal(err)
				}
				if err := a.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				raw[victim].Fail()
				got := make([]byte, len(all))
				if err := a.ReadBlocks(ctx, 0, got); err != nil {
					t.Fatalf("victim %d: degraded read: %v", victim, err)
				}
				if !bytes.Equal(got, all) {
					t.Fatalf("victim %d: degraded read returned wrong data", victim)
				}
			}
		})
	}
}

// TestEnginesDegradedWriteThenRead: fail a disk, write new data in
// degraded mode, and verify it reads back correctly.
func TestEnginesDegradedWriteThenRead(t *testing.T) {
	for _, ec := range engineCases() {
		if !ec.redundant {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			ctx := context.Background()
			for victim := 0; ; victim++ {
				a, raw := ec.build(t)
				if victim >= len(raw) {
					break
				}
				base := make([]byte, a.Blocks()*int64(testBS))
				fill(base, int64(victim))
				if err := a.WriteBlocks(ctx, 0, base); err != nil {
					t.Fatal(err)
				}
				if err := a.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				raw[victim].Fail()
				// Overwrite a window spanning several stripes.
				b, n := int64(3), int64(11)
				upd := make([]byte, n*int64(testBS))
				fill(upd, int64(1000+victim))
				if err := a.WriteBlocks(ctx, b, upd); err != nil {
					t.Fatalf("victim %d: degraded write: %v", victim, err)
				}
				if err := a.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				copy(base[b*int64(testBS):], upd)
				got := make([]byte, len(base))
				if err := a.ReadBlocks(ctx, 0, got); err != nil {
					t.Fatalf("victim %d: read after degraded write: %v", victim, err)
				}
				if !bytes.Equal(got, base) {
					t.Fatalf("victim %d: data diverged after degraded write", victim)
				}
			}
		})
	}
}

// TestEnginesRebuild: fail a disk, replace it, rebuild, fail a
// *different* disk, and verify the data — proving the rebuild restored
// real redundancy.
func TestEnginesRebuild(t *testing.T) {
	for _, ec := range engineCases() {
		if !ec.redundant {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			ctx := context.Background()
			a, raw := ec.build(t)
			rb, ok := a.(raid.Rebuilder)
			if !ok {
				t.Fatalf("%s does not implement Rebuilder", ec.name)
			}
			all := make([]byte, a.Blocks()*int64(testBS))
			fill(all, 5)
			if err := a.WriteBlocks(ctx, 0, all); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			victim := 1
			raw[victim].Fail()
			if err := raw[victim].Replace(); err != nil {
				t.Fatalf("replace: %v", err)
			}
			if err := rb.Rebuild(ctx, victim); err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			if v, ok := a.(raid.Verifier); ok {
				if err := v.Verify(ctx); err != nil {
					t.Fatalf("verify after rebuild: %v", err)
				}
			}
			// Now lose a different disk; the rebuilt one must carry it.
			other := 2
			raw[other].Fail()
			got := make([]byte, len(all))
			if err := a.ReadBlocks(ctx, 0, got); err != nil {
				t.Fatalf("read after second failure: %v", err)
			}
			if !bytes.Equal(got, all) {
				t.Fatal("data wrong after rebuild + second failure")
			}
		})
	}
}

// TestEnginesDoubleFailureDetected: redundant arrays must report data
// loss, not silently return wrong data, when two overlapping copies die.
func TestEnginesDoubleFailureDetected(t *testing.T) {
	for _, ec := range engineCases() {
		// Arrays tolerating more than one failure (or with layouts where
		// disks 0 and 1 may not share a redundancy group) are exempt.
		if !ec.redundant || ec.name == "raidx-4x3" || ec.tolerates > 1 {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			ctx := context.Background()
			a, raw := ec.build(t)
			all := make([]byte, a.Blocks()*int64(testBS))
			fill(all, 9)
			if err := a.WriteBlocks(ctx, 0, all); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			// For 4-disk arrays, failing disks 0 and 1 always kills a
			// copy pair or two stripe members.
			raw[0].Fail()
			raw[1].Fail()
			err := a.ReadBlocks(ctx, 0, make([]byte, len(all)))
			if err == nil {
				t.Fatal("double-failure read succeeded")
			}
			if !errors.Is(err, raid.ErrDataLoss) && !errors.Is(err, disk.ErrFailed) {
				t.Fatalf("got %v, want data-loss or disk-failed error", err)
			}
		})
	}
}

func TestRAID0FailureIsFatal(t *testing.T) {
	devs, raw := mkDisks(4, 16)
	a, err := raid.NewRAID0(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 1)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	raw[2].Fail()
	if err := a.ReadBlocks(ctx, 0, make([]byte, len(all))); err == nil {
		t.Fatal("RAID-0 read with failed disk succeeded")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := raid.NewRAID5(nil); err == nil {
		t.Error("RAID-5 over no disks accepted")
	}
	devs, _ := mkDisks(2, 16)
	if _, err := raid.NewRAID5(devs); err == nil {
		t.Error("RAID-5 over 2 disks accepted")
	}
	devs3, _ := mkDisks(3, 16)
	if _, err := raid.NewRAID10(devs3); err == nil {
		t.Error("RAID-10 over odd disks accepted")
	}
	if _, err := core.New(devs3, 2, 2, core.Options{}); err == nil {
		t.Error("RAID-x with mismatched grid accepted")
	}
	mixed := []raid.Dev{
		disk.New(nil, "a", store.NewMem(128, 16), disk.DefaultModel()),
		disk.New(nil, "b", store.NewMem(256, 16), disk.DefaultModel()),
	}
	if _, err := raid.NewRAID10(mixed); err == nil {
		t.Error("mixed block sizes accepted")
	}
}

// TestHotSpareFailover: lose a disk, fail over onto a spare, verify the
// array is fully redundant again by losing a second disk afterwards.
func TestHotSpareFailover(t *testing.T) {
	devs, raw := mkDisks(4, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spares, _ := mkDisks(2, 64)
	sp := raid.NewSparer(a, spares)
	if sp.SparesLeft() != 2 {
		t.Fatalf("spares = %d", sp.SparesLeft())
	}

	ctx := context.Background()
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 77)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	raw[2].Fail()
	if err := sp.Failover(ctx, 2); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if sp.SparesLeft() != 1 || len(sp.Retired()) != 1 {
		t.Fatalf("pool state: %d spares, %d retired", sp.SparesLeft(), len(sp.Retired()))
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after failover: %v", err)
	}
	// The rebuilt spare must carry the data when another disk dies.
	raw[0].Fail()
	got := make([]byte, len(all))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read after second failure: %v", err)
	}
	if !bytes.Equal(got, all) {
		t.Fatal("data wrong after spare failover + second failure")
	}
	// Second failover uses the last spare.
	if err := sp.Failover(ctx, 0); err != nil {
		t.Fatalf("second failover: %v", err)
	}
	if err := sp.Failover(ctx, 1); err == nil {
		t.Fatal("third failover succeeded with empty pool")
	}
}

// TestHotSpareGeometryMismatch: a wrong-sized spare is rejected and
// returned to the pool.
func TestHotSpareGeometryMismatch(t *testing.T) {
	devs, _ := mkDisks(4, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny := disk.New(nil, "tiny", store.NewMem(testBS, 8), disk.DefaultModel())
	sp := raid.NewSparer(a, []raid.Dev{tiny})
	if err := sp.Failover(context.Background(), 1); err == nil {
		t.Fatal("mismatched spare accepted")
	}
	if sp.SparesLeft() != 1 {
		t.Fatalf("spare not returned to pool: %d left", sp.SparesLeft())
	}
}
