package raid

import (
	"context"

	"repro/internal/par"
)

// mapping describes a round-robin striped placement: logical block b
// belongs to column b mod width, physical block base + b/width on disk
// diskOf(column). All striped layouts in the paper (RAID-0 data,
// RAID-10 copies, chained-declustering data and mirror areas, OSM data
// area) are instances of this shape, which is what makes per-disk
// accesses contiguous: the logical blocks of one column within any
// contiguous logical range occupy consecutive physical blocks.
type mapping struct {
	width  int
	base   int64
	diskOf func(col int) int
}

// run is one per-column contiguous piece of a striped request.
type run struct {
	col   int   // stripe column
	first int64 // first logical block of the run
	phys  int64 // physical start block (base already applied)
	count int   // number of blocks
}

// runs decomposes the logical range [b, b+n) into per-column contiguous
// runs, ordered by column.
func (m mapping) runs(b int64, n int) []run {
	w := int64(m.width)
	out := make([]run, 0, m.width)
	for col := 0; col < m.width; col++ {
		// First logical block >= b in this column.
		first := b + (int64(col)-b%w+w)%w
		if first >= b+int64(n) {
			continue
		}
		count := int((b+int64(n)-1-first)/w) + 1
		out = append(out, run{col: col, first: first, phys: m.base + first/w, count: count})
	}
	return out
}

// gather copies the run's logical blocks out of the user buffer p
// (whose first byte is logical block b0) into a dense per-disk buffer.
func (m mapping) gather(dst, p []byte, r run, b0 int64, bs int) {
	for t := 0; t < r.count; t++ {
		lb := r.first + int64(t)*int64(m.width)
		copy(dst[t*bs:(t+1)*bs], p[(lb-b0)*int64(bs):])
	}
}

// scatter copies a dense per-disk buffer back into the user buffer.
func (m mapping) scatter(p, src []byte, r run, b0 int64, bs int) {
	for t := 0; t < r.count; t++ {
		lb := r.first + int64(t)*int64(m.width)
		copy(p[(lb-b0)*int64(bs):(lb-b0)*int64(bs)+int64(bs)], src[t*bs:(t+1)*bs])
	}
}

// readStriped performs a parallel striped read of [b, b+n) into p.
// If a device is unhealthy and fallback is non-nil, fallback is invoked
// for that run instead (degraded path). A device that reports healthy
// but then errors mid-run (a flaky or partitioned remote node) also
// fails over to fallback; the original error is returned only if the
// fallback cannot serve the run either.
func readStriped(ctx context.Context, devs []Dev, m mapping, b int64, p []byte, bs int,
	fallback func(ctx context.Context, r run) error) error {

	rs := m.runs(b, len(p)/bs)
	fns := make([]func(context.Context) error, len(rs))
	for i, r := range rs {
		r := r
		dev := devs[m.diskOf(r.col)]
		fns[i] = func(ctx context.Context) error {
			if !dev.Healthy() && fallback != nil {
				return fallback(ctx, r)
			}
			buf := make([]byte, r.count*bs)
			if err := dev.ReadBlocks(ctx, r.phys, buf); err != nil {
				if fallback != nil && ctx.Err() == nil {
					if ferr := fallback(ctx, r); ferr == nil {
						return nil
					}
				}
				return err
			}
			m.scatter(p, buf, r, b, bs)
			return nil
		}
	}
	return par.Do(ctx, fns...)
}

// writeStriped performs a parallel striped write of p to [b, b+n).
// skipUnhealthy controls degraded behaviour: if true, runs landing on
// failed devices are silently skipped (the caller guarantees another
// copy exists); if false the device error propagates. background
// selects deferred writes.
func writeStriped(ctx context.Context, devs []Dev, m mapping, b int64, p []byte, bs int,
	skipUnhealthy, background bool) error {

	rs := m.runs(b, len(p)/bs)
	fns := make([]func(context.Context) error, len(rs))
	for i, r := range rs {
		r := r
		dev := devs[m.diskOf(r.col)]
		fns[i] = func(ctx context.Context) error {
			if skipUnhealthy && !dev.Healthy() {
				return nil
			}
			buf := make([]byte, r.count*bs)
			m.gather(buf, p, r, b, bs)
			if background {
				return dev.WriteBlocksBackground(ctx, r.phys, buf)
			}
			return dev.WriteBlocks(ctx, r.phys, buf)
		}
	}
	return par.Do(ctx, fns...)
}

// flushAll drains background work on every device, in parallel.
// Unhealthy devices are skipped (their queued work is lost with them).
func flushAll(ctx context.Context, devs []Dev) error {
	return par.ForEach(ctx, len(devs), func(ctx context.Context, i int) error {
		if !devs[i].Healthy() {
			return nil
		}
		return devs[i].Flush(ctx)
	})
}
