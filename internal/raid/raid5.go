package raid

import (
	"context"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/layout"
	"repro/internal/par"
	"repro/internal/parity"
)

// RAID5 is block-interleaved distributed parity. Small writes pay the
// classic read-modify-write penalty (read old data + old parity, write
// new data + new parity) that the paper's Figure 5 exposes; full-stripe
// writes compute parity in memory and write all disks in parallel. The
// array survives a single disk failure: degraded reads reconstruct from
// the surviving blocks, and Rebuild regenerates a replaced disk.
//
// All parity math runs through the internal/parity kernels, and all
// scratch comes from internal/bufpool, so the engine allocates only
// small bookkeeping on the data path.
type RAID5 struct {
	devs []Dev
	lay  layout.RAID5
	bs   int

	degradedNotify func(blocks int)
}

// NewRAID5 builds a RAID-5 array over at least three devices.
func NewRAID5(devs []Dev) (*RAID5, error) {
	bs, per, err := checkDevs(devs, 3)
	if err != nil {
		return nil, err
	}
	return &RAID5{
		devs: devs,
		lay:  layout.NewRAID5(layout.Geometry{Disks: len(devs), DiskBlocks: per}),
		bs:   bs,
	}, nil
}

// Name implements Array.
func (a *RAID5) Name() string { return "raid5" }

// BlockSize implements Array.
func (a *RAID5) BlockSize() int { return a.bs }

// Blocks implements Array.
func (a *RAID5) Blocks() int64 { return a.lay.DataBlocks() }

// SetDegradedNotify implements DegradedNotifier: fn is called with the
// number of logical blocks served through reconstruction. Must be set
// before the array is used; not synchronized against I/O.
func (a *RAID5) SetDegradedNotify(fn func(blocks int)) { a.degradedNotify = fn }

// failedDisk returns the index of the single failed device, or -1 if
// all are healthy. A second failure returns an error.
func (a *RAID5) failedDisk() (int, error) {
	failed := -1
	for i, d := range a.devs {
		if !d.Healthy() {
			if failed >= 0 {
				return 0, fmt.Errorf("raid5: disks %d and %d both failed: %w", failed, i, ErrDataLoss)
			}
			failed = i
		}
	}
	return failed, nil
}

// diskOfData reports which disk holds data index j of stripe s.
func (a *RAID5) diskOfData(s int64, j int) int {
	return (a.lay.ParityDisk(s) + 1 + j) % len(a.devs)
}

// ReadBlocks implements Array.
func (a *RAID5) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDisk()
	if err != nil {
		return err
	}
	segs := map[int][]seg{}
	var degradedStripes []int64
	for lb := b; lb < b+int64(n); lb++ {
		s, j := a.lay.StripeOf(lb)
		d := a.diskOfData(s, j)
		if d == failed {
			if len(degradedStripes) == 0 || degradedStripes[len(degradedStripes)-1] != s {
				degradedStripes = append(degradedStripes, s)
			}
			continue
		}
		addTo(segs, d, s, lb)
	}
	if err := runSegs(ctx, a.devs, a.bs, segs, p, b); err != nil {
		return err
	}
	// Reconstruct blocks that lived on the failed disk, stripe by
	// stripe: XOR of all surviving blocks (data + parity).
	for _, s := range degradedStripes {
		if err := a.reconstructInto(ctx, s, failed, p, b, n); err != nil {
			return err
		}
	}
	if len(degradedStripes) > 0 && a.degradedNotify != nil {
		a.degradedNotify(len(degradedStripes))
	}
	return nil
}

// reconstructInto rebuilds the block of stripe s living on disk failed
// and stores it at its logical position within p (logical window
// [b0, b0+n)).
func (a *RAID5) reconstructInto(ctx context.Context, s int64, failed int, p []byte, b0 int64, n int) error {
	acc := bufpool.Get(a.bs)
	defer bufpool.Put(acc)
	clear(acc)
	bufs := make([][]byte, len(a.devs))
	err := par.ForEach(ctx, len(a.devs), func(ctx context.Context, d int) error {
		if d == failed {
			return nil
		}
		bufs[d] = bufpool.Get(a.bs)
		return a.devs[d].ReadBlocks(ctx, s, bufs[d])
	})
	if err == nil {
		for d, buf := range bufs {
			if d == failed || buf == nil {
				continue
			}
			parity.XorInto(acc, buf)
		}
	}
	for _, buf := range bufs {
		if buf != nil {
			bufpool.Put(buf)
		}
	}
	if err != nil {
		return err
	}
	// Locate the failed block's logical number.
	pd := a.lay.ParityDisk(s)
	if failed == pd {
		return nil // parity block: nothing to deliver
	}
	j := (failed - pd - 1 + len(a.devs)) % len(a.devs)
	lb := s*int64(len(a.devs)-1) + int64(j)
	if lb >= b0 && lb < b0+int64(n) {
		copy(p[(lb-b0)*int64(a.bs):(lb-b0+1)*int64(a.bs)], acc)
	}
	return nil
}

// WriteBlocks implements Array.
func (a *RAID5) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDisk()
	if err != nil {
		return err
	}
	nd := int64(len(a.devs) - 1) // data blocks per stripe
	end := b + int64(n)

	// Split into a partial head stripe, a run of full stripes, and a
	// partial tail stripe.
	s0 := b / nd
	s1 := (end - 1) / nd
	fullStart, fullEnd := s0, s1+1
	if b%nd != 0 {
		fullStart = s0 + 1
	}
	if end%nd != 0 {
		fullEnd = s1
	}
	if fullStart > fullEnd {
		fullStart, fullEnd = 0, 0 // no full stripes
	}

	// Partial stripes first (RMW or reconstruct-write)...
	for s := s0; s <= s1; s++ {
		if s >= fullStart && s < fullEnd {
			continue
		}
		lo, hi := s*nd, (s+1)*nd
		if lo < b {
			lo = b
		}
		if hi > end {
			hi = end
		}
		if err := a.writePartialStripe(ctx, s, lo, hi, p, b, failed); err != nil {
			return err
		}
	}
	// ...then the full-stripe region as one long parallel write.
	if fullStart < fullEnd {
		if err := a.writeFullStripes(ctx, fullStart, fullEnd, p, b, failed); err != nil {
			return err
		}
	}
	return nil
}

// writeFullStripes writes stripes [sa, sb), all fully covered. Data
// blocks go out as gather lists aliasing the caller's buffer directly
// (the PR-4 zero-copy path); only the parity column is staged, in one
// pooled buffer.
func (a *RAID5) writeFullStripes(ctx context.Context, sa, sb int64, p []byte, b0 int64, failed int) error {
	nDisks := len(a.devs)
	nd := int64(nDisks - 1)
	rows := int(sb - sa)
	parityBuf := bufpool.Get(rows * a.bs)
	defer bufpool.Put(parityBuf)
	segsByDisk := make([][][]byte, nDisks)
	for d := range segsByDisk {
		segsByDisk[d] = make([][]byte, rows)
	}
	for s := sa; s < sb; s++ {
		row := int(s - sa)
		pd := a.lay.ParityDisk(s)
		pblk := parityBuf[row*a.bs : (row+1)*a.bs]
		segsByDisk[pd][row] = pblk
		lb0 := s * nd
		first := p[(lb0-b0)*int64(a.bs) : (lb0-b0+1)*int64(a.bs)]
		copy(pblk, first)
		segsByDisk[a.diskOfData(s, 0)][row] = first
		for j := 1; j < int(nd); j++ {
			lb := lb0 + int64(j)
			src := p[(lb-b0)*int64(a.bs) : (lb-b0+1)*int64(a.bs)]
			segsByDisk[a.diskOfData(s, j)][row] = src
			parity.XorInto(pblk, src)
		}
	}
	return par.ForEach(ctx, nDisks, func(ctx context.Context, d int) error {
		if d == failed {
			return nil
		}
		return WriteBlocksVec(ctx, a.devs[d], sa, segsByDisk[d])
	})
}

// writePartialStripe updates logical blocks [lo, hi) of stripe s.
func (a *RAID5) writePartialStripe(ctx context.Context, s, lo, hi int64, p []byte, b0 int64, failed int) error {
	nDisks := len(a.devs)
	nd := int64(nDisks - 1)
	pd := a.lay.ParityDisk(s)

	newData := func(lb int64) []byte {
		return p[(lb-b0)*int64(a.bs) : (lb-b0+1)*int64(a.bs)]
	}

	coveredOnFailed := false
	for lb := lo; lb < hi; lb++ {
		if a.diskOfData(s, int(lb%nd)) == failed {
			coveredOnFailed = true
		}
	}

	switch {
	case failed == pd:
		// Parity disk gone: write the data blocks, no parity upkeep.
		return par.ForEach(ctx, int(hi-lo), func(ctx context.Context, i int) error {
			lb := lo + int64(i)
			return a.devs[a.diskOfData(s, int(lb%nd))].WriteBlocks(ctx, s, newData(lb))
		})

	case coveredOnFailed:
		// Reconstruct-write: parity = XOR(new covered values,
		// surviving uncovered values). The value destined for the
		// failed disk exists only inside the parity.
		pblk := bufpool.Get(a.bs)
		defer bufpool.Put(pblk)
		clear(pblk)
		type job struct {
			disk int
			lb   int64
		}
		var uncovered []job
		for j := int64(0); j < nd; j++ {
			lb := s*nd + j
			if lb >= lo && lb < hi {
				parity.XorInto(pblk, newData(lb))
				continue
			}
			uncovered = append(uncovered, job{disk: a.diskOfData(s, int(j)), lb: lb})
		}
		bufs := make([][]byte, len(uncovered))
		err := par.ForEach(ctx, len(uncovered), func(ctx context.Context, i int) error {
			bufs[i] = bufpool.Get(a.bs)
			return a.devs[uncovered[i].disk].ReadBlocks(ctx, s, bufs[i])
		})
		if err == nil {
			for _, buf := range bufs {
				parity.XorInto(pblk, buf)
			}
		}
		for _, buf := range bufs {
			if buf != nil {
				bufpool.Put(buf)
			}
		}
		if err != nil {
			return err
		}
		fns := []func(context.Context) error{
			func(ctx context.Context) error { return a.devs[pd].WriteBlocks(ctx, s, pblk) },
		}
		for lb := lo; lb < hi; lb++ {
			lb := lb
			d := a.diskOfData(s, int(lb%nd))
			if d == failed {
				continue
			}
			fns = append(fns, func(ctx context.Context) error {
				return a.devs[d].WriteBlocks(ctx, s, newData(lb))
			})
		}
		return par.Do(ctx, fns...)

	default:
		// Classic read-modify-write: read old data and old parity in
		// parallel, XOR deltas into parity, write data and parity in
		// parallel. This is the "R+W" small-write cost of Table 2 and
		// the source of RAID-5's poor small-write bandwidth.
		count := int(hi - lo)
		oldData := make([][]byte, count)
		oldParity := bufpool.Get(a.bs)
		fns := []func(context.Context) error{
			func(ctx context.Context) error { return a.devs[pd].ReadBlocks(ctx, s, oldParity) },
		}
		for i := 0; i < count; i++ {
			i := i
			lb := lo + int64(i)
			d := a.diskOfData(s, int(lb%nd))
			fns = append(fns, func(ctx context.Context) error {
				oldData[i] = bufpool.Get(a.bs)
				return a.devs[d].ReadBlocks(ctx, s, oldData[i])
			})
		}
		err := par.Do(ctx, fns...)
		if err == nil {
			for i := 0; i < count; i++ {
				lb := lo + int64(i)
				parity.XorInto(oldParity, oldData[i])
				parity.XorInto(oldParity, newData(lb))
			}
		}
		for _, buf := range oldData {
			if buf != nil {
				bufpool.Put(buf)
			}
		}
		if err != nil {
			bufpool.Put(oldParity)
			return err
		}
		fns = fns[:0]
		fns = append(fns, func(ctx context.Context) error {
			return a.devs[pd].WriteBlocks(ctx, s, oldParity)
		})
		for lb := lo; lb < hi; lb++ {
			lb := lb
			d := a.diskOfData(s, int(lb%nd))
			fns = append(fns, func(ctx context.Context) error {
				return a.devs[d].WriteBlocks(ctx, s, newData(lb))
			})
		}
		err = par.Do(ctx, fns...)
		bufpool.Put(oldParity)
		return err
	}
}

// Flush implements Array.
func (a *RAID5) Flush(ctx context.Context) error { return flushAll(ctx, a.devs) }

// Rebuild implements Rebuilder: every block of the replaced disk (data
// or parity) is the XOR of the other disks' blocks in its stripe.
func (a *RAID5) Rebuild(ctx context.Context, idx int) error {
	if idx < 0 || idx >= len(a.devs) {
		return fmt.Errorf("raid5: rebuild of device %d out of range", idx)
	}
	if !a.devs[idx].Healthy() {
		return fmt.Errorf("raid5: rebuild target %d is not healthy (replace it first)", idx)
	}
	stripes := a.lay.Geo.DiskBlocks
	const batch = 64
	for s0 := int64(0); s0 < stripes; s0 += batch {
		rows := int64(batch)
		if s0+rows > stripes {
			rows = stripes - s0
		}
		acc := bufpool.Get(int(rows) * a.bs)
		clear(acc)
		bufs := make([][]byte, len(a.devs))
		err := par.ForEach(ctx, len(a.devs), func(ctx context.Context, d int) error {
			if d == idx {
				return nil
			}
			if !a.devs[d].Healthy() {
				return fmt.Errorf("raid5: rebuild source %d failed: %w", d, ErrDataLoss)
			}
			bufs[d] = bufpool.Get(int(rows) * a.bs)
			return a.devs[d].ReadBlocks(ctx, s0, bufs[d])
		})
		if err == nil {
			for d, buf := range bufs {
				if d == idx || buf == nil {
					continue
				}
				parity.XorInto(acc, buf)
			}
			err = a.devs[idx].WriteBlocks(ctx, s0, acc)
		}
		for _, buf := range bufs {
			if buf != nil {
				bufpool.Put(buf)
			}
		}
		bufpool.Put(acc)
		if err != nil {
			return err
		}
	}
	return nil
}

// Verify implements Verifier: the XOR of every stripe (data blocks and
// parity) must be zero.
func (a *RAID5) Verify(ctx context.Context) error {
	acc := bufpool.Get(a.bs)
	buf := bufpool.Get(a.bs)
	defer bufpool.Put(acc)
	defer bufpool.Put(buf)
	zero := zeroBlock(a.bs)
	defer bufpool.Put(zero)
	for s := int64(0); s < a.lay.Geo.DiskBlocks; s++ {
		clear(acc)
		for d := range a.devs {
			if err := a.devs[d].ReadBlocks(ctx, s, buf); err != nil {
				return err
			}
			parity.XorInto(acc, buf)
		}
		if i := parity.FirstDiff(acc, zero); i >= 0 {
			return fmt.Errorf("raid5: stripe %d parity mismatch at byte %d", s, i)
		}
	}
	return nil
}

// zeroBlock returns a pooled all-zero block of n bytes; the caller must
// Put it back.
func zeroBlock(n int) []byte {
	b := bufpool.Get(n)
	clear(b)
	return b
}
