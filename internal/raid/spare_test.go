package raid_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/raid"
)

// TestRepairConcurrentFailover: two goroutines racing Failover for the
// same failed member must consume exactly one spare — the loser gets
// ErrRepairInFlight instead of swapping out the winner's fresh spare.
// Run under -race (the CI repair shard does).
func TestRepairConcurrentFailover(t *testing.T) {
	devs, raw := mkDisks(4, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spares, _ := mkDisks(2, 64)
	sp := raid.NewSparer(a, spares)
	ctx := context.Background()
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 11)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	raw[2].Fail()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = sp.Failover(ctx, 2)
		}()
	}
	wg.Wait()
	var won, lost int
	for _, err := range errs {
		switch {
		case err == nil:
			won++
		case errors.Is(err, raid.ErrRepairInFlight):
			lost++
		default:
			t.Fatalf("unexpected failover error: %v", err)
		}
	}
	if won != 1 || lost != 1 {
		t.Fatalf("%d winners, %d in-flight rejections; want exactly one of each", won, lost)
	}
	if sp.SparesLeft() != 1 {
		t.Fatalf("%d spares left, want 1 (one failure must consume one spare)", sp.SparesLeft())
	}
	if len(sp.Retired()) != 1 {
		t.Fatalf("%d devices retired, want 1 (a fresh spare was swapped out)", len(sp.Retired()))
	}
	if sp.InFlight(2) {
		t.Fatal("slot still claimed after failover returned")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after racing failovers: %v", err)
	}
	got := make([]byte, len(all))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, all) {
		t.Fatal("data wrong after racing failovers")
	}
}

// TestRepairSwapReleaseClaims: the supervisor-facing Swap/Release pair
// holds the slot claim across an external rebuild: Failover for the
// same slot is rejected until Release, and an unrelated slot is not
// blocked.
func TestRepairSwapReleaseClaims(t *testing.T) {
	devs, raw := mkDisks(4, 64)
	a, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spares, _ := mkDisks(3, 64)
	sp := raid.NewSparer(a, spares)
	ctx := context.Background()

	raw[1].Fail()
	if err := sp.Swap(1); err != nil {
		t.Fatal(err)
	}
	if !sp.InFlight(1) {
		t.Fatal("swap did not claim the slot")
	}
	if err := sp.Failover(ctx, 1); !errors.Is(err, raid.ErrRepairInFlight) {
		t.Fatalf("failover during claimed repair returned %v, want ErrRepairInFlight", err)
	}
	// Finish the supervised rebuild (slot 1's content is trustworthy
	// again) but keep the claim held.
	if err := a.Rebuild(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Another slot is independent of the still-held claim on slot 1.
	raw[3].Fail()
	if err := sp.Failover(ctx, 3); err != nil {
		t.Fatalf("failover of unrelated slot: %v", err)
	}
	sp.Release(1)
	if sp.InFlight(1) {
		t.Fatal("release did not clear the claim")
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}
