package raid

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// DevSwapper is implemented by arrays whose member devices can be
// replaced in place (core.RAIDx implements it); required for hot
// sparing.
type DevSwapper interface {
	Rebuilder
	// SwapDev replaces member idx with dev (which must match geometry)
	// and returns the previous device.
	SwapDev(idx int, dev Dev) (Dev, error)
}

// ErrRepairInFlight reports that a failover or supervised repair
// already owns the member slot — a second conflicting copy must not
// start and a second spare must not be consumed.
var ErrRepairInFlight = errors.New("raid: repair already in flight")

// Sparer manages a pool of hot-spare disks for an array: when a member
// fails, Failover swaps a spare into its slot and rebuilds it from the
// array's redundancy — the automated counterpart of the manual
// fail/replace/rebuild cycle.
type Sparer struct {
	arr DevSwapper

	mu     sync.Mutex
	spares []Dev
	// retired holds failed devices swapped out, for inspection.
	retired []Dev
	// inflight marks member slots with a claimed spare whose repair has
	// not finished: concurrent callers for the same slot get
	// ErrRepairInFlight instead of double-consuming spares (the second
	// swap would retire the first, still-blank spare).
	inflight map[int]bool
}

// NewSparer creates a sparer over the array with the given spare pool.
func NewSparer(arr DevSwapper, spares []Dev) *Sparer {
	return &Sparer{arr: arr, spares: spares, inflight: make(map[int]bool)}
}

// SparesLeft reports the remaining spare count.
func (s *Sparer) SparesLeft() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spares)
}

// Retired returns the failed devices that have been swapped out.
func (s *Sparer) Retired() []Dev {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Dev(nil), s.retired...)
}

// InFlight reports whether member idx has a claimed, unreleased repair.
func (s *Sparer) InFlight(idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[idx]
}

// claim atomically takes the slot and a spare: one lock covers both
// decisions, so two concurrent callers can never pop two spares for one
// failed member.
func (s *Sparer) claim(idx int) (Dev, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[idx] {
		return nil, fmt.Errorf("%w for member %d", ErrRepairInFlight, idx)
	}
	if len(s.spares) == 0 {
		return nil, fmt.Errorf("raid: no spares left for member %d", idx)
	}
	spare := s.spares[len(s.spares)-1]
	s.spares = s.spares[:len(s.spares)-1]
	s.inflight[idx] = true
	return spare, nil
}

// unclaim returns an unused spare to the pool and frees the slot (the
// swap itself failed, e.g. geometry mismatch).
func (s *Sparer) unclaim(idx int, spare Dev) {
	s.mu.Lock()
	s.spares = append(s.spares, spare)
	delete(s.inflight, idx)
	s.mu.Unlock()
}

// Swap claims member idx and installs a spare in its slot without
// rebuilding it, for callers that run the rebuild themselves as a
// managed background job (the repair supervisor). The slot stays
// claimed — blocking Failover and further Swaps — until Release.
func (s *Sparer) Swap(idx int) error {
	spare, err := s.claim(idx)
	if err != nil {
		return err
	}
	old, err := s.arr.SwapDev(idx, spare)
	if err != nil {
		s.unclaim(idx, spare)
		return err
	}
	s.mu.Lock()
	s.retired = append(s.retired, old)
	s.mu.Unlock()
	return nil
}

// Release frees the claim on member idx after the caller's repair
// finished (or was abandoned).
func (s *Sparer) Release(idx int) {
	s.mu.Lock()
	delete(s.inflight, idx)
	s.mu.Unlock()
}

// Failover replaces failed member idx with a spare and rebuilds it.
// The array serves (degraded) traffic throughout; on return the array
// is fully redundant again. The slot stays claimed for the whole
// swap+rebuild, so a concurrent Failover for the same member fails fast
// with ErrRepairInFlight rather than consuming a second spare.
func (s *Sparer) Failover(ctx context.Context, idx int) error {
	if err := s.Swap(idx); err != nil {
		return err
	}
	defer s.Release(idx)
	return s.arr.Rebuild(ctx, idx)
}
