package raid

import (
	"context"
	"fmt"
	"sync"
)

// DevSwapper is implemented by arrays whose member devices can be
// replaced in place (core.RAIDx implements it); required for hot
// sparing.
type DevSwapper interface {
	Rebuilder
	// SwapDev replaces member idx with dev (which must match geometry)
	// and returns the previous device.
	SwapDev(idx int, dev Dev) (Dev, error)
}

// Sparer manages a pool of hot-spare disks for an array: when a member
// fails, Failover swaps a spare into its slot and rebuilds it from the
// array's redundancy — the automated counterpart of the manual
// fail/replace/rebuild cycle.
type Sparer struct {
	arr DevSwapper

	mu     sync.Mutex
	spares []Dev
	// retired holds failed devices swapped out, for inspection.
	retired []Dev
}

// NewSparer creates a sparer over the array with the given spare pool.
func NewSparer(arr DevSwapper, spares []Dev) *Sparer {
	return &Sparer{arr: arr, spares: spares}
}

// SparesLeft reports the remaining spare count.
func (s *Sparer) SparesLeft() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spares)
}

// Retired returns the failed devices that have been swapped out.
func (s *Sparer) Retired() []Dev {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Dev(nil), s.retired...)
}

// Failover replaces failed member idx with a spare and rebuilds it.
// The array serves (degraded) traffic throughout; on return the array
// is fully redundant again.
func (s *Sparer) Failover(ctx context.Context, idx int) error {
	s.mu.Lock()
	if len(s.spares) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("raid: no spares left for member %d", idx)
	}
	spare := s.spares[len(s.spares)-1]
	s.spares = s.spares[:len(s.spares)-1]
	s.mu.Unlock()

	old, err := s.arr.SwapDev(idx, spare)
	if err != nil {
		// Return the spare to the pool.
		s.mu.Lock()
		s.spares = append(s.spares, spare)
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.retired = append(s.retired, old)
	s.mu.Unlock()
	return s.arr.Rebuild(ctx, idx)
}
