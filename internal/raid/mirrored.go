package raid

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/par"
)

// mirroredArray factors the shared behaviour of RAID-10 and chained
// declustering: two complete striped copies of the data, written in the
// foreground, with reads load-balanced over both copies and degraded
// operation falling back to the surviving copy.
//
// The two engines differ only in their primary/mirror mappings, which
// is exactly the paper's Figure 1b vs. a conventional striped-mirror
// arrangement.
type mirroredArray struct {
	name    string
	devs    []Dev
	bs      int
	blocks  int64
	primary mapping
	mirror  mapping
	// flip alternates reads between copies for load balancing.
	flip atomic.Uint32
	// balanceReads enables alternating; chained declustering and
	// RAID-10 both read from either copy.
	balanceReads bool
}

func (a *mirroredArray) Name() string   { return a.name }
func (a *mirroredArray) BlockSize() int { return a.bs }
func (a *mirroredArray) Blocks() int64  { return a.blocks }

// ReadBlocks reads from one copy, alternating between copies per call
// for load balance, with per-run fallback to the other copy when a
// device has failed.
func (a *mirroredArray) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	if _, err := checkRange(a, b, p); err != nil {
		return err
	}
	first, second := a.primary, a.mirror
	if a.balanceReads && a.flip.Add(1)%2 == 0 {
		first, second = second, first
	}
	return readStriped(ctx, a.devs, first, b, p, a.bs, func(ctx context.Context, r run) error {
		// Degraded path: the same logical blocks through the other
		// mapping. Both mappings stripe with the same width, so the
		// run is contiguous there too.
		dev := a.devs[second.diskOf(r.col)]
		if !dev.Healthy() {
			return fmt.Errorf("%s: both copies of column %d failed: %w", a.name, r.col, ErrDataLoss)
		}
		buf := make([]byte, r.count*a.bs)
		phys := second.base + r.first/int64(second.width)
		if err := dev.ReadBlocks(ctx, phys, buf); err != nil {
			return err
		}
		second.scatter(p, buf, r, b, a.bs)
		return nil
	})
}

// WriteBlocks writes both copies in the foreground (the conventional
// mirrored-write discipline that RAID-x improves upon). Runs landing on
// a failed device are skipped as long as the other copy is healthy.
func (a *mirroredArray) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	if _, err := checkRange(a, b, p); err != nil {
		return err
	}
	if err := a.checkWritable(b, len(p)/a.bs); err != nil {
		return err
	}
	return par.Do(ctx,
		func(ctx context.Context) error {
			return writeStriped(ctx, a.devs, a.primary, b, p, a.bs, true, false)
		},
		func(ctx context.Context) error {
			return writeStriped(ctx, a.devs, a.mirror, b, p, a.bs, true, false)
		},
	)
}

// checkWritable verifies every touched column retains at least one
// healthy copy.
func (a *mirroredArray) checkWritable(b int64, n int) error {
	for _, r := range a.primary.runs(b, n) {
		pOK := a.devs[a.primary.diskOf(r.col)].Healthy()
		mOK := a.devs[a.mirror.diskOf(r.col)].Healthy()
		if !pOK && !mOK {
			return fmt.Errorf("%s: both copies of column %d failed: %w", a.name, r.col, ErrDataLoss)
		}
	}
	return nil
}

// Flush implements Array.
func (a *mirroredArray) Flush(ctx context.Context) error { return flushAll(ctx, a.devs) }

// Rebuild reconstructs device idx from the surviving copies: every
// column whose primary or mirror lives on idx is copied across.
func (a *mirroredArray) Rebuild(ctx context.Context, idx int) error {
	if idx < 0 || idx >= len(a.devs) {
		return fmt.Errorf("%s: rebuild of device %d out of range", a.name, idx)
	}
	if !a.devs[idx].Healthy() {
		return fmt.Errorf("%s: rebuild target %d is not healthy (replace it first)", a.name, idx)
	}
	total := a.blocks
	w := int64(a.primary.width)
	for col := 0; col < a.primary.width; col++ {
		colBlocks := (total - int64(col) + w - 1) / w
		if colBlocks <= 0 {
			continue
		}
		var src, dst mapping
		switch {
		case a.primary.diskOf(col) == idx:
			src, dst = a.mirror, a.primary
		case a.mirror.diskOf(col) == idx:
			src, dst = a.primary, a.mirror
		default:
			continue
		}
		from := a.devs[src.diskOf(col)]
		if !from.Healthy() {
			return fmt.Errorf("%s: cannot rebuild column %d, source failed: %w", a.name, col, ErrDataLoss)
		}
		// Column col starts at physical block base on its disk.
		buf := make([]byte, colBlocks*int64(a.bs))
		if err := from.ReadBlocks(ctx, src.base, buf); err != nil {
			return err
		}
		if err := a.devs[idx].WriteBlocks(ctx, dst.base, buf); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks that both copies of every block agree.
func (a *mirroredArray) Verify(ctx context.Context) error {
	buf1 := make([]byte, a.bs)
	buf2 := make([]byte, a.bs)
	for b := int64(0); b < a.blocks; b++ {
		pl := a.primary
		ml := a.mirror
		col := int(b % int64(pl.width))
		if err := a.devs[pl.diskOf(col)].ReadBlocks(ctx, pl.base+b/int64(pl.width), buf1); err != nil {
			return err
		}
		if err := a.devs[ml.diskOf(col)].ReadBlocks(ctx, ml.base+b/int64(ml.width), buf2); err != nil {
			return err
		}
		for i := range buf1 {
			if buf1[i] != buf2[i] {
				return fmt.Errorf("%s: block %d copies differ at byte %d", a.name, b, i)
			}
		}
	}
	return nil
}
