package raid

import (
	"context"

	"repro/internal/bufpool"
)

// VecDev is optionally implemented by devices that support
// scatter/gather block I/O natively: the segments address consecutive
// blocks on the device starting at b, and each segment's length must be
// a positive multiple of the block size. Remote disks implement it to
// put a strided column access on the wire as one vectored frame;
// devices without it are served by ReadBlocksVec/WriteBlocksVec through
// a pooled coalescing buffer.
type VecDev interface {
	ReadBlocksVec(ctx context.Context, b int64, segs [][]byte) error
	WriteBlocksVec(ctx context.Context, b int64, segs [][]byte) error
}

// ReadBlocksVec reads consecutive blocks starting at b, scattering them
// into segs: natively when the device supports it, otherwise through
// one pooled flat read (the only copy on the path).
func ReadBlocksVec(ctx context.Context, d Dev, b int64, segs [][]byte) error {
	if len(segs) == 1 {
		return d.ReadBlocks(ctx, b, segs[0])
	}
	if v, ok := d.(VecDev); ok {
		return v.ReadBlocksVec(ctx, b, segs)
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf := bufpool.Get(total)
	err := d.ReadBlocks(ctx, b, buf)
	if err == nil {
		n := 0
		for _, s := range segs {
			n += copy(s, buf[n:])
		}
	}
	bufpool.Put(buf)
	return err
}

// WriteBlocksVec writes the gather list segs as consecutive blocks
// starting at b: natively when the device supports it, otherwise
// through one pooled flat write (the only copy on the path).
func WriteBlocksVec(ctx context.Context, d Dev, b int64, segs [][]byte) error {
	if len(segs) == 1 {
		return d.WriteBlocks(ctx, b, segs[0])
	}
	if v, ok := d.(VecDev); ok {
		return v.WriteBlocksVec(ctx, b, segs)
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf := bufpool.Get(total)
	n := 0
	for _, s := range segs {
		n += copy(buf[n:], s)
	}
	err := d.WriteBlocks(ctx, b, buf)
	bufpool.Put(buf)
	return err
}
