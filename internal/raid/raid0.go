package raid

import (
	"context"
	"fmt"

	"repro/internal/layout"
)

// RAID0 is plain striping: full bandwidth, no redundancy. It is both a
// baseline in the paper's Table 2 and the model for RAID-x's data area.
type RAID0 struct {
	devs []Dev
	lay  layout.RAID0
	bs   int
}

// NewRAID0 builds a RAID-0 array over the devices.
func NewRAID0(devs []Dev) (*RAID0, error) {
	bs, per, err := checkDevs(devs, 1)
	if err != nil {
		return nil, err
	}
	return &RAID0{
		devs: devs,
		lay:  layout.NewRAID0(layout.Geometry{Disks: len(devs), DiskBlocks: per}),
		bs:   bs,
	}, nil
}

// Name implements Array.
func (a *RAID0) Name() string { return "raid0" }

// BlockSize implements Array.
func (a *RAID0) BlockSize() int { return a.bs }

// Blocks implements Array.
func (a *RAID0) Blocks() int64 { return a.lay.DataBlocks() }

func (a *RAID0) mapping() mapping {
	return mapping{width: len(a.devs), base: 0, diskOf: func(c int) int { return c }}
}

// ReadBlocks implements Array.
func (a *RAID0) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	if _, err := checkRange(a, b, p); err != nil {
		return err
	}
	return readStriped(ctx, a.devs, a.mapping(), b, p, a.bs, func(context.Context, run) error {
		return fmt.Errorf("raid0: %w", ErrDataLoss)
	})
}

// WriteBlocks implements Array.
func (a *RAID0) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	if _, err := checkRange(a, b, p); err != nil {
		return err
	}
	return writeStriped(ctx, a.devs, a.mapping(), b, p, a.bs, false, false)
}

// Flush implements Array.
func (a *RAID0) Flush(ctx context.Context) error { return flushAll(ctx, a.devs) }
