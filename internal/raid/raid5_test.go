package raid_test

// Targeted RAID-5 degraded-path tests: each partial-stripe write case
// (parity disk failed, covered data disk failed, uncovered data disk
// failed) is exercised explicitly, because each takes a different code
// path (skip-parity, reconstruct-write, read-modify-write).

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/raid"
)

// raid5Rig builds a 4-disk RAID-5 with its layout for stripe math.
func raid5Rig(t *testing.T) (*raid.RAID5, []*disk.Disk, layout.RAID5) {
	t.Helper()
	devs, raw := mkDisks(4, 32)
	a, err := raid.NewRAID5(devs)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.NewRAID5(layout.Geometry{Disks: 4, DiskBlocks: 32})
	return a, raw, lay
}

// seedAndFlush writes a random base image and returns the shadow copy.
func seedAndFlush(t *testing.T, a raid.Array, seed int64) []byte {
	t.Helper()
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(a.BlockSize()))
	rand.New(rand.NewSource(seed)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return data
}

// checkAll verifies the array content equals the shadow.
func checkAll(t *testing.T, a raid.Array, want []byte, what string) {
	t.Helper()
	got := make([]byte, len(want))
	if err := a.ReadBlocks(context.Background(), 0, got); err != nil {
		t.Fatalf("%s: read: %v", what, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: content mismatch", what)
	}
}

func TestRAID5DegradedWriteParityDiskFailed(t *testing.T) {
	a, raw, lay := raid5Rig(t)
	shadow := seedAndFlush(t, a, 1)
	ctx := context.Background()
	bs := a.BlockSize()

	// Pick stripe 2, fail exactly its parity disk, then partially
	// overwrite that stripe.
	s := int64(2)
	raw[lay.ParityDisk(s)].Fail()
	lb := lay.StripeBlocks(s)[1] // one mid-stripe block
	upd := bytes.Repeat([]byte{0xA1}, bs)
	if err := a.WriteBlocks(ctx, lb, upd); err != nil {
		t.Fatalf("write with parity disk down: %v", err)
	}
	copy(shadow[lb*int64(bs):], upd)
	checkAll(t, a, shadow, "parity-disk-failed")
}

func TestRAID5DegradedWriteCoveredDataDiskFailed(t *testing.T) {
	a, raw, lay := raid5Rig(t)
	shadow := seedAndFlush(t, a, 2)
	ctx := context.Background()
	bs := a.BlockSize()

	// Fail the disk holding the block we are about to overwrite:
	// forces the reconstruct-write path, and the new value exists only
	// inside the parity.
	s := int64(3)
	lb := lay.StripeBlocks(s)[0]
	raw[lay.DataLoc(lb).Disk].Fail()
	upd := bytes.Repeat([]byte{0xB2}, bs)
	if err := a.WriteBlocks(ctx, lb, upd); err != nil {
		t.Fatalf("reconstruct-write: %v", err)
	}
	copy(shadow[lb*int64(bs):], upd)
	// The value must be reconstructible (read goes through parity).
	checkAll(t, a, shadow, "covered-data-disk-failed")
}

func TestRAID5DegradedWriteUncoveredDataDiskFailed(t *testing.T) {
	a, raw, lay := raid5Rig(t)
	shadow := seedAndFlush(t, a, 3)
	ctx := context.Background()
	bs := a.BlockSize()

	// Fail a disk holding an *untouched* block of the stripe: the
	// written blocks RMW normally, and parity must still reconstruct
	// the untouched block afterwards.
	s := int64(1)
	blocks := lay.StripeBlocks(s)
	victim := lay.DataLoc(blocks[2]).Disk
	raw[victim].Fail()
	lb := blocks[0]
	upd := bytes.Repeat([]byte{0xC3}, 2*bs) // covers blocks[0], blocks[1]
	if err := a.WriteBlocks(ctx, lb, upd); err != nil {
		t.Fatalf("RMW with uncovered disk down: %v", err)
	}
	copy(shadow[lb*int64(bs):], upd)
	checkAll(t, a, shadow, "uncovered-data-disk-failed")
}

func TestRAID5FullStripeWriteDegraded(t *testing.T) {
	a, raw, lay := raid5Rig(t)
	shadow := seedAndFlush(t, a, 4)
	ctx := context.Background()
	bs := a.BlockSize()

	// Full-stripe write with a data disk down: the missing block's
	// value lives in the recomputed parity.
	s := int64(0)
	blocks := lay.StripeBlocks(s)
	raw[lay.DataLoc(blocks[1]).Disk].Fail()
	upd := make([]byte, len(blocks)*bs)
	rand.New(rand.NewSource(5)).Read(upd)
	if err := a.WriteBlocks(ctx, blocks[0], upd); err != nil {
		t.Fatalf("degraded full-stripe write: %v", err)
	}
	copy(shadow[blocks[0]*int64(bs):], upd)
	checkAll(t, a, shadow, "full-stripe-degraded")
}

func TestRAID5ParityConsistentAfterMixedWrites(t *testing.T) {
	a, _, _ := raid5Rig(t)
	seedAndFlush(t, a, 6)
	ctx := context.Background()
	bs := a.BlockSize()
	rng := rand.New(rand.NewSource(7))
	// Mixed small/large writes, then a parity scrub.
	for op := 0; op < 60; op++ {
		b := rng.Int63n(a.Blocks())
		n := 1 + rng.Int63n(7)
		if b+n > a.Blocks() {
			n = a.Blocks() - b
		}
		buf := make([]byte, n*int64(bs))
		rng.Read(buf)
		if err := a.WriteBlocks(ctx, b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("parity scrub failed: %v", err)
	}
}

func TestRAID5RebuildParityDisk(t *testing.T) {
	a, raw, lay := raid5Rig(t)
	shadow := seedAndFlush(t, a, 8)
	ctx := context.Background()
	// Rebuild a disk that holds parity for some stripes and data for
	// others.
	victim := lay.ParityDisk(0)
	raw[victim].Fail()
	if err := raw[victim].Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after parity-disk rebuild: %v", err)
	}
	checkAll(t, a, shadow, "after-rebuild")
}
