package raid

import (
	"context"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/par"
	"repro/internal/parity"
)

// RSArray is a Reed-Solomon erasure-coded array: each stripe holds k
// data shards and m parity shards (k = len(devs) - m), and the array
// tolerates any m device failures. Shard placement rotates by one
// device per stripe — like RAID-5's rotating parity, so parity writes
// and degraded-read load spread over all members instead of pinning m
// dedicated parity disks.
//
// Stripe s places shard j (data for j < k, parity row j-k otherwise)
// at physical block s of device (j + s) mod n. Logical block lb maps
// to stripe lb/k, data shard lb%k.
//
// All parity math runs through the internal/parity kernels; degraded
// reads reconstruct whole stripes via RS.Reconstruct over pooled
// buffers, and full-stripe writes go out as gather lists aliasing the
// caller's buffer (the PR-4 zero-copy path) with only the m parity
// columns staged in pooled memory.
type RSArray struct {
	devs []Dev
	bs   int
	k, m int
	code *parity.RS

	stripes int64 // physical blocks per device

	degradedNotify func(blocks int)
}

// NewRS builds an erasure-coded array with m parity shards per stripe
// over the given devices; k is implied as len(devs) - m. At least two
// data shards are required (use mirroring below that).
func NewRS(devs []Dev, m int) (*RSArray, error) {
	if m < 1 {
		return nil, fmt.Errorf("raid: rs: m must be >= 1, got %d", m)
	}
	bs, per, err := checkDevs(devs, m+2)
	if err != nil {
		return nil, err
	}
	k := len(devs) - m
	code, err := parity.NewRS(k, m)
	if err != nil {
		return nil, fmt.Errorf("raid: rs: %w", err)
	}
	return &RSArray{devs: devs, bs: bs, k: k, m: m, code: code, stripes: per}, nil
}

// Name implements Array.
func (a *RSArray) Name() string { return fmt.Sprintf("rs(%d,%d)", a.k, a.m) }

// BlockSize implements Array.
func (a *RSArray) BlockSize() int { return a.bs }

// Blocks implements Array.
func (a *RSArray) Blocks() int64 { return a.stripes * int64(a.k) }

// Shards reports the code geometry (k data, m parity).
func (a *RSArray) Shards() (k, m int) { return a.k, a.m }

// SetDegradedNotify implements DegradedNotifier: fn is called with the
// number of stripes served through reconstruction. Must be set before
// the array is used; not synchronized against I/O.
func (a *RSArray) SetDegradedNotify(fn func(blocks int)) { a.degradedNotify = fn }

// devOf reports the device holding shard j of stripe s.
func (a *RSArray) devOf(s int64, j int) int {
	n := len(a.devs)
	return (j + int(s%int64(n))) % n
}

// shardOf reports which shard of stripe s device d holds.
func (a *RSArray) shardOf(s int64, d int) int {
	n := len(a.devs)
	return (d - int(s%int64(n)) + n) % n
}

// failedDevs returns the indices of failed devices; more than m is
// data loss.
func (a *RSArray) failedDevs() ([]int, error) {
	var failed []int
	for i, d := range a.devs {
		if !d.Healthy() {
			failed = append(failed, i)
		}
	}
	if len(failed) > a.m {
		return nil, fmt.Errorf("rs(%d,%d): %d devices failed, tolerate %d: %w", a.k, a.m, len(failed), a.m, ErrDataLoss)
	}
	return failed, nil
}

func isFailed(failed []int, d int) bool {
	for _, f := range failed {
		if f == d {
			return true
		}
	}
	return false
}

// ReadBlocks implements Array. Healthy shards are read as vectored
// segments scattering straight into p; stripes with a needed shard on
// a failed device are reconstructed through the kernel. A device that
// reports healthy but errors at read time (remote health probes are
// cached, so Healthy() can lag an actual failure) triggers one retry
// with that device treated as failed, so its blocks are served through
// reconstruction instead of surfacing the error.
func (a *RSArray) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDevs()
	if err != nil {
		return err
	}
	for {
		erred, err := a.readOnce(ctx, b, n, p, failed)
		if err == nil {
			return nil
		}
		// Each round adds at least one newly-erring device to the
		// failed set (erred is always disjoint from failed, because
		// failed devices are never read), so this terminates after at
		// most m extra attempts before tripping the budget check.
		if ctx.Err() != nil || len(erred) == 0 || len(failed)+len(erred) > a.m {
			return err
		}
		failed = append(failed, erred...)
	}
}

// readOnce plans and executes one read attempt treating the given
// devices as failed. On error it also reports which devices errored at
// read time, so the caller can fold them into the failed set and
// retry.
func (a *RSArray) readOnce(ctx context.Context, b int64, n int, p []byte, failed []int) ([]int, error) {
	segs := map[int][]seg{}
	var degradedStripes []int64
	for lb := b; lb < b+int64(n); lb++ {
		s, j := lb/int64(a.k), int(lb%int64(a.k))
		d := a.devOf(s, j)
		if isFailed(failed, d) {
			if len(degradedStripes) == 0 || degradedStripes[len(degradedStripes)-1] != s {
				degradedStripes = append(degradedStripes, s)
			}
			continue
		}
		addTo(segs, d, s, lb)
	}
	if erred, err := runSegsNoting(ctx, a.devs, a.bs, segs, p, b); err != nil {
		return erred, err
	}
	for _, s := range degradedStripes {
		if erred, err := a.reconstructStripeInto(ctx, s, failed, p, b, n); err != nil {
			return erred, err
		}
	}
	if len(degradedStripes) > 0 && a.degradedNotify != nil {
		a.degradedNotify(len(degradedStripes))
	}
	return nil, nil
}

// readStripeShards reads every shard of stripe s from the healthy
// devices into pooled buffers and reconstructs the missing ones. The
// returned shards (k data + m parity, all valid) must be released with
// putShards.
func (a *RSArray) readStripeShards(ctx context.Context, s int64, failed []int) ([][]byte, error) {
	shards, _, err := a.readStripeShardsNoting(ctx, s, failed)
	return shards, err
}

// readStripeShardsNoting is readStripeShards, also reporting which
// devices errored at read time (for the runtime failover loop in
// readOnce — a reconstruction source can itself turn out to be dead
// behind a stale health report).
func (a *RSArray) readStripeShardsNoting(ctx context.Context, s int64, failed []int) ([][]byte, []int, error) {
	nShards := a.k + a.m
	shards := make([][]byte, nShards)
	present := make([]bool, nShards)
	for j := 0; j < nShards; j++ {
		shards[j] = bufpool.Get(a.bs)
		present[j] = !isFailed(failed, a.devOf(s, j))
	}
	errs := make([]error, nShards)
	_ = par.ForEach(ctx, nShards, func(ctx context.Context, j int) error {
		if !present[j] {
			return nil
		}
		errs[j] = a.devs[a.devOf(s, j)].ReadBlocks(ctx, s, shards[j])
		return nil
	})
	var erred []int
	var err error
	for j, e := range errs {
		if e != nil {
			erred = append(erred, a.devOf(s, j))
			if err == nil {
				err = e
			}
		}
	}
	if err == nil && len(failed) > 0 {
		err = a.code.Reconstruct(shards, present)
	}
	if err != nil {
		putShards(shards)
		return nil, erred, err
	}
	return shards, nil, nil
}

func putShards(shards [][]byte) {
	for _, sh := range shards {
		if sh != nil {
			bufpool.Put(sh)
		}
	}
}

// reconstructStripeInto rebuilds stripe s and copies the blocks that
// fall inside the logical window [b0, b0+n) into p. On error it also
// reports the devices that errored at read time.
func (a *RSArray) reconstructStripeInto(ctx context.Context, s int64, failed []int, p []byte, b0 int64, n int) ([]int, error) {
	shards, erred, err := a.readStripeShardsNoting(ctx, s, failed)
	if err != nil {
		return erred, err
	}
	defer putShards(shards)
	for j := 0; j < a.k; j++ {
		lb := s*int64(a.k) + int64(j)
		if lb >= b0 && lb < b0+int64(n) {
			copy(p[(lb-b0)*int64(a.bs):(lb-b0+1)*int64(a.bs)], shards[j])
		}
	}
	return nil, nil
}

// WriteBlocks implements Array.
func (a *RSArray) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDevs()
	if err != nil {
		return err
	}
	k := int64(a.k)
	end := b + int64(n)
	s0 := b / k
	s1 := (end - 1) / k
	fullStart, fullEnd := s0, s1+1
	if b%k != 0 {
		fullStart = s0 + 1
	}
	if end%k != 0 {
		fullEnd = s1
	}
	if fullStart > fullEnd {
		fullStart, fullEnd = 0, 0 // no full stripes
	}
	for s := s0; s <= s1; s++ {
		if s >= fullStart && s < fullEnd {
			continue
		}
		lo, hi := s*k, (s+1)*k
		if lo < b {
			lo = b
		}
		if hi > end {
			hi = end
		}
		if err := a.writePartialStripe(ctx, s, lo, hi, p, b, failed); err != nil {
			return err
		}
	}
	if fullStart < fullEnd {
		if err := a.writeFullStripes(ctx, fullStart, fullEnd, p, b, failed); err != nil {
			return err
		}
	}
	return nil
}

// writeFullStripes writes stripes [sa, sb), all fully covered: data
// shards go out as gather lists aliasing p (zero-copy), parity shards
// are encoded into one pooled staging buffer.
func (a *RSArray) writeFullStripes(ctx context.Context, sa, sb int64, p []byte, b0 int64, failed []int) error {
	nDevs := len(a.devs)
	rows := int(sb - sa)
	parityBuf := bufpool.Get(rows * a.m * a.bs)
	defer bufpool.Put(parityBuf)
	segsByDev := make([][][]byte, nDevs)
	for d := range segsByDev {
		segsByDev[d] = make([][]byte, rows)
	}
	data := make([][]byte, a.k)
	pshards := make([][]byte, a.m)
	for s := sa; s < sb; s++ {
		row := int(s - sa)
		lb0 := s * int64(a.k)
		for j := 0; j < a.k; j++ {
			lb := lb0 + int64(j)
			data[j] = p[(lb-b0)*int64(a.bs) : (lb-b0+1)*int64(a.bs)]
			segsByDev[a.devOf(s, j)][row] = data[j]
		}
		for j := 0; j < a.m; j++ {
			off := (row*a.m + j) * a.bs
			pshards[j] = parityBuf[off : off+a.bs]
			segsByDev[a.devOf(s, a.k+j)][row] = pshards[j]
		}
		if err := a.code.Encode(data, pshards); err != nil {
			return err
		}
	}
	return par.ForEach(ctx, nDevs, func(ctx context.Context, d int) error {
		if isFailed(failed, d) {
			return nil
		}
		return WriteBlocksVec(ctx, a.devs[d], sa, segsByDev[d])
	})
}

// writePartialStripe updates logical blocks [lo, hi) of stripe s.
// With no failures it is the RS small-write: read old covered data and
// all parity, apply per-shard deltas through RS.Update, write back.
// With failures it degenerates to reconstruct-write: rebuild the whole
// old stripe, overlay the new data, re-encode, and write the healthy
// members.
func (a *RSArray) writePartialStripe(ctx context.Context, s, lo, hi int64, p []byte, b0 int64, failed []int) error {
	newData := func(lb int64) []byte {
		return p[(lb-b0)*int64(a.bs) : (lb-b0+1)*int64(a.bs)]
	}

	if len(failed) == 0 {
		// Read-modify-write via parity deltas.
		count := int(hi - lo)
		old := make([][]byte, count)
		pshards := make([][]byte, a.m)
		release := func() {
			putShards(old)
			putShards(pshards)
		}
		fns := make([]func(context.Context) error, 0, count+a.m)
		for i := 0; i < count; i++ {
			i := i
			lb := lo + int64(i)
			d := a.devOf(s, int(lb%int64(a.k)))
			fns = append(fns, func(ctx context.Context) error {
				old[i] = bufpool.Get(a.bs)
				return a.devs[d].ReadBlocks(ctx, s, old[i])
			})
		}
		for j := 0; j < a.m; j++ {
			j := j
			d := a.devOf(s, a.k+j)
			fns = append(fns, func(ctx context.Context) error {
				pshards[j] = bufpool.Get(a.bs)
				return a.devs[d].ReadBlocks(ctx, s, pshards[j])
			})
		}
		if err := par.Do(ctx, fns...); err != nil {
			release()
			return err
		}
		for i := 0; i < count; i++ {
			lb := lo + int64(i)
			// delta = old ^ new, formed in place in the old buffer.
			parity.XorInto(old[i], newData(lb))
			a.code.Update(pshards, int(lb%int64(a.k)), old[i])
		}
		fns = fns[:0]
		for lb := lo; lb < hi; lb++ {
			lb := lb
			d := a.devOf(s, int(lb%int64(a.k)))
			fns = append(fns, func(ctx context.Context) error {
				return a.devs[d].WriteBlocks(ctx, s, newData(lb))
			})
		}
		for j := 0; j < a.m; j++ {
			j := j
			d := a.devOf(s, a.k+j)
			fns = append(fns, func(ctx context.Context) error {
				return a.devs[d].WriteBlocks(ctx, s, pshards[j])
			})
		}
		err := par.Do(ctx, fns...)
		release()
		return err
	}

	// Degraded: reconstruct-write the whole stripe.
	shards, err := a.readStripeShards(ctx, s, failed)
	if err != nil {
		return err
	}
	defer putShards(shards)
	for lb := lo; lb < hi; lb++ {
		copy(shards[int(lb%int64(a.k))], newData(lb))
	}
	if err := a.code.Encode(shards[:a.k], shards[a.k:]); err != nil {
		return err
	}
	return par.ForEach(ctx, a.k+a.m, func(ctx context.Context, j int) error {
		d := a.devOf(s, j)
		if isFailed(failed, d) {
			return nil
		}
		// Data shards outside [lo, hi) are unchanged on disk; only
		// covered data and all parity need writing.
		if j < a.k {
			lb := s*int64(a.k) + int64(j)
			if lb < lo || lb >= hi {
				return nil
			}
		}
		return a.devs[d].WriteBlocks(ctx, s, shards[j])
	})
}

// Flush implements Array.
func (a *RSArray) Flush(ctx context.Context) error { return flushAll(ctx, a.devs) }

// Rebuild implements Rebuilder: reconstruct every block of (replaced)
// device idx from the survivors. Up to m-1 other devices may be down.
func (a *RSArray) Rebuild(ctx context.Context, idx int) error {
	if idx < 0 || idx >= len(a.devs) {
		return fmt.Errorf("rs: rebuild of device %d out of range", idx)
	}
	if !a.devs[idx].Healthy() {
		return fmt.Errorf("rs: rebuild target %d is not healthy (replace it first)", idx)
	}
	var failed []int
	for i, d := range a.devs {
		if i == idx || !d.Healthy() {
			failed = append(failed, i)
		}
	}
	if len(failed) > a.m {
		return fmt.Errorf("rs(%d,%d): %d members unavailable during rebuild, tolerate %d: %w", a.k, a.m, len(failed), a.m, ErrDataLoss)
	}
	const batch = 64
	for s0 := int64(0); s0 < a.stripes; s0 += batch {
		rows := int64(batch)
		if s0+rows > a.stripes {
			rows = a.stripes - s0
		}
		out := bufpool.Get(int(rows) * a.bs)
		err := func() error {
			for s := s0; s < s0+rows; s++ {
				shards, err := a.readStripeShards(ctx, s, failed)
				if err != nil {
					return err
				}
				copy(out[int(s-s0)*a.bs:], shards[a.shardOf(s, idx)])
				putShards(shards)
			}
			return a.devs[idx].WriteBlocks(ctx, s0, out)
		}()
		bufpool.Put(out)
		if err != nil {
			return err
		}
	}
	return nil
}

// Verify implements Verifier: re-encode every stripe's data and
// compare against the stored parity shards.
func (a *RSArray) Verify(ctx context.Context) error {
	nShards := a.k + a.m
	shards := make([][]byte, nShards)
	for j := range shards {
		shards[j] = bufpool.Get(a.bs)
	}
	defer putShards(shards)
	want := make([][]byte, a.m)
	for j := range want {
		want[j] = bufpool.Get(a.bs)
	}
	defer putShards(want)
	for s := int64(0); s < a.stripes; s++ {
		err := par.ForEach(ctx, nShards, func(ctx context.Context, j int) error {
			return a.devs[a.devOf(s, j)].ReadBlocks(ctx, s, shards[j])
		})
		if err != nil {
			return err
		}
		if err := a.code.Encode(shards[:a.k], want); err != nil {
			return err
		}
		for j := 0; j < a.m; j++ {
			if i := parity.FirstDiff(shards[a.k+j], want[j]); i >= 0 {
				return fmt.Errorf("rs(%d,%d): stripe %d parity shard %d mismatch at byte %d (device %d)",
					a.k, a.m, s, j, i, a.devOf(s, a.k+j))
			}
		}
	}
	return nil
}
