package raid

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/layout"
	"repro/internal/par"
	"repro/internal/parity"
)

// AFRAID is the Savage–Wilkes "Frequently Redundant Array of
// Independent Disks" (USENIX '96), which the paper names as an
// influence on RAID-x: a RAID-5 layout whose parity is updated *lazily*
// in the background. Small writes run at striping speed (no
// read-modify-write on the critical path); the cost is a redundancy
// window — stripes whose parity has not caught up are unprotected, and
// a disk failure inside the window loses the affected blocks.
//
// RAID-x reaches the same small-write speed with mirroring instead of
// parity, paying capacity (50%) rather than a redundancy window; this
// engine makes that design-space comparison concrete.
type AFRAID struct {
	devs []Dev
	lay  layout.RAID5
	bs   int

	mu    sync.Mutex
	dirty map[int64]bool // stripes with stale parity

	degradedNotify func(blocks int)
}

// NewAFRAID builds an AFRAID array over at least three devices.
func NewAFRAID(devs []Dev) (*AFRAID, error) {
	bs, per, err := checkDevs(devs, 3)
	if err != nil {
		return nil, err
	}
	return &AFRAID{
		devs:  devs,
		lay:   layout.NewRAID5(layout.Geometry{Disks: len(devs), DiskBlocks: per}),
		bs:    bs,
		dirty: map[int64]bool{},
	}, nil
}

// Name implements Array.
func (a *AFRAID) Name() string { return "afraid" }

// BlockSize implements Array.
func (a *AFRAID) BlockSize() int { return a.bs }

// Blocks implements Array.
func (a *AFRAID) Blocks() int64 { return a.lay.DataBlocks() }

// SetDegradedNotify implements DegradedNotifier: fn is called with the
// number of logical blocks served through reconstruction. Must be set
// before the array is used; not synchronized against I/O.
func (a *AFRAID) SetDegradedNotify(fn func(blocks int)) { a.degradedNotify = fn }

// DirtyStripes reports how many stripes currently lack valid parity —
// the size of the redundancy window.
func (a *AFRAID) DirtyStripes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.dirty)
}

func (a *AFRAID) markDirty(s int64) {
	a.mu.Lock()
	a.dirty[s] = true
	a.mu.Unlock()
}

func (a *AFRAID) isDirty(s int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dirty[s]
}

func (a *AFRAID) diskOfData(s int64, j int) int {
	return (a.lay.ParityDisk(s) + 1 + j) % len(a.devs)
}

func (a *AFRAID) failedDisk() (int, error) {
	failed := -1
	for i, d := range a.devs {
		if !d.Healthy() {
			if failed >= 0 {
				return 0, fmt.Errorf("afraid: disks %d and %d both failed: %w", failed, i, ErrDataLoss)
			}
			failed = i
		}
	}
	return failed, nil
}

// ReadBlocks implements Array. Healthy reads are plain data reads;
// degraded reads reconstruct through parity, which only works for
// stripes outside the redundancy window.
func (a *AFRAID) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDisk()
	if err != nil {
		return err
	}
	return par.ForEach(ctx, n, func(ctx context.Context, i int) error {
		lb := b + int64(i)
		s, j := a.lay.StripeOf(lb)
		d := a.diskOfData(s, int(j))
		dst := p[int64(i)*int64(a.bs) : (int64(i)+1)*int64(a.bs)]
		if d != failed {
			return a.devs[d].ReadBlocks(ctx, s, dst)
		}
		// Reconstruct from the survivors — valid only if parity is
		// current for this stripe.
		if a.isDirty(s) {
			return fmt.Errorf("afraid: block %d in redundancy window (stripe %d parity stale): %w", lb, s, ErrDataLoss)
		}
		// Reconstruct directly into the caller's buffer; one pooled
		// scratch block carries the survivor reads.
		clear(dst)
		buf := bufpool.Get(a.bs)
		defer bufpool.Put(buf)
		for dd := range a.devs {
			if dd == failed {
				continue
			}
			if err := a.devs[dd].ReadBlocks(ctx, s, buf); err != nil {
				return err
			}
			parity.XorInto(dst, buf)
		}
		if a.degradedNotify != nil {
			a.degradedNotify(1)
		}
		return nil
	})
}

// WriteBlocks implements Array: data blocks are written immediately
// (striped, parallel, no parity I/O on the critical path), and the
// affected stripes enter the redundancy window until Flush (or the
// opportunistic sync below) recomputes their parity in the background.
func (a *AFRAID) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	n, err := checkRange(a, b, p)
	if err != nil {
		return err
	}
	failed, err := a.failedDisk()
	if err != nil {
		return err
	}
	// Group per disk for contiguity, as in the striped engines.
	type op struct {
		disk int
		phys int64
		src  []byte
	}
	var ops []op
	for i := 0; i < n; i++ {
		lb := b + int64(i)
		s, j := a.lay.StripeOf(lb)
		d := a.diskOfData(s, int(j))
		if d == failed {
			return fmt.Errorf("afraid: cannot write block %d, its disk failed and parity is lazy: %w", lb, ErrDataLoss)
		}
		a.markDirty(s)
		ops = append(ops, op{disk: d, phys: s, src: p[int64(i)*int64(a.bs) : (int64(i)+1)*int64(a.bs)]})
	}
	return par.ForEach(ctx, len(ops), func(ctx context.Context, i int) error {
		return a.devs[ops[i].disk].WriteBlocks(ctx, ops[i].phys, ops[i].src)
	})
}

// Flush recomputes parity for every stripe in the redundancy window
// using the background lanes (reads of the data blocks plus the parity
// write are deferred work), restoring full redundancy.
func (a *AFRAID) Flush(ctx context.Context) error {
	a.mu.Lock()
	stripes := make([]int64, 0, len(a.dirty))
	for s := range a.dirty {
		stripes = append(stripes, s)
	}
	a.mu.Unlock()
	for _, s := range stripes {
		if err := a.syncStripe(ctx, s); err != nil {
			return err
		}
	}
	// Wait for the deferred parity work to drain.
	return par.ForEach(ctx, len(a.devs), func(ctx context.Context, i int) error {
		if !a.devs[i].Healthy() {
			return nil
		}
		return a.devs[i].Flush(ctx)
	})
}

// syncStripe recomputes one stripe's parity. The data reads happen in
// the foreground of the *sync worker* (here: the flusher), but are
// charged as background work by using the deferred-write entry points
// where possible; the parity write itself is deferred.
func (a *AFRAID) syncStripe(ctx context.Context, s int64) error {
	pd := a.lay.ParityDisk(s)
	if !a.devs[pd].Healthy() {
		// No parity disk: the stripe stays dirty until rebuild.
		return nil
	}
	pblk := bufpool.Get(a.bs)
	buf := bufpool.Get(a.bs)
	defer bufpool.Put(pblk)
	defer bufpool.Put(buf)
	clear(pblk)
	for j := 0; j < len(a.devs)-1; j++ {
		d := a.diskOfData(s, j)
		if !a.devs[d].Healthy() {
			return fmt.Errorf("afraid: cannot sync stripe %d, data disk %d down: %w", s, d, ErrDataLoss)
		}
		if err := a.devs[d].ReadBlocks(ctx, s, buf); err != nil {
			return err
		}
		parity.XorInto(pblk, buf)
	}
	if err := a.devs[pd].WriteBlocksBackground(ctx, s, pblk); err != nil {
		return err
	}
	a.mu.Lock()
	delete(a.dirty, s)
	a.mu.Unlock()
	return nil
}

// Rebuild implements Rebuilder for stripes outside the redundancy
// window; dirty stripes cannot be reconstructed (AFRAID's accepted
// risk) and abort the rebuild.
func (a *AFRAID) Rebuild(ctx context.Context, idx int) error {
	if idx < 0 || idx >= len(a.devs) {
		return fmt.Errorf("afraid: rebuild of device %d out of range", idx)
	}
	if a.DirtyStripes() > 0 {
		return fmt.Errorf("afraid: %d stripes in the redundancy window: %w", a.DirtyStripes(), ErrDataLoss)
	}
	stripes := a.lay.Geo.DiskBlocks
	acc := bufpool.Get(a.bs)
	buf := bufpool.Get(a.bs)
	defer bufpool.Put(acc)
	defer bufpool.Put(buf)
	for s := int64(0); s < stripes; s++ {
		clear(acc)
		for d := range a.devs {
			if d == idx {
				continue
			}
			if err := a.devs[d].ReadBlocks(ctx, s, buf); err != nil {
				return err
			}
			parity.XorInto(acc, buf)
		}
		if err := a.devs[idx].WriteBlocks(ctx, s, acc); err != nil {
			return err
		}
	}
	return nil
}

// Verify implements Verifier: every clean stripe's XOR must be zero
// (dirty stripes are exempt — that is the redundancy window).
func (a *AFRAID) Verify(ctx context.Context) error {
	acc := bufpool.Get(a.bs)
	buf := bufpool.Get(a.bs)
	defer bufpool.Put(acc)
	defer bufpool.Put(buf)
	zero := zeroBlock(a.bs)
	defer bufpool.Put(zero)
	for s := int64(0); s < a.lay.Geo.DiskBlocks; s++ {
		if a.isDirty(s) {
			continue
		}
		clear(acc)
		for d := range a.devs {
			if err := a.devs[d].ReadBlocks(ctx, s, buf); err != nil {
				return err
			}
			parity.XorInto(acc, buf)
		}
		if i := parity.FirstDiff(acc, zero); i >= 0 {
			return fmt.Errorf("afraid: clean stripe %d parity mismatch at byte %d", s, i)
		}
	}
	return nil
}
