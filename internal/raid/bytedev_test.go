package raid_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/raid"
)

func byteDev(t *testing.T) *raid.ByteDevice {
	t.Helper()
	devs, _ := mkDisks(4, 32)
	a, err := raid.NewRAID0(devs)
	if err != nil {
		t.Fatal(err)
	}
	return raid.NewByteDevice(a)
}

func TestByteDeviceUnalignedRoundTrip(t *testing.T) {
	d := byteDev(t)
	ctx := context.Background()
	// Offsets and lengths deliberately misaligned with the 256 B block.
	data := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := d.WriteAt(ctx, data, 131); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if _, err := d.ReadAt(ctx, got, 131); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned round trip mismatch")
	}
}

func TestByteDevicePreservesNeighbours(t *testing.T) {
	d := byteDev(t)
	ctx := context.Background()
	base := make([]byte, 2048)
	for i := range base {
		base[i] = byte(i)
	}
	if _, err := d.WriteAt(ctx, base, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite a sliver in the middle of a block.
	if _, err := d.WriteAt(ctx, []byte("XYZ"), 700); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2048)
	if _, err := d.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	copy(base[700:], "XYZ")
	if !bytes.Equal(got, base) {
		t.Fatal("RMW clobbered neighbouring bytes")
	}
}

func TestByteDeviceEOF(t *testing.T) {
	d := byteDev(t)
	ctx := context.Background()
	size := d.Size()
	buf := make([]byte, 100)
	n, err := d.ReadAt(ctx, buf, size-40)
	if n != 40 || !errors.Is(err, io.EOF) {
		t.Fatalf("tail read: n=%d err=%v, want 40, EOF", n, err)
	}
	if _, err := d.ReadAt(ctx, buf, size); !errors.Is(err, io.EOF) {
		t.Fatalf("read at end: %v", err)
	}
	if _, err := d.WriteAt(ctx, buf, size-40); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, err := d.ReadAt(ctx, buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// TestByteDeviceShadow drives random unaligned writes against a flat
// reference buffer.
func TestByteDeviceShadow(t *testing.T) {
	d := byteDev(t)
	ctx := context.Background()
	shadow := make([]byte, d.Size())
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 300; op++ {
		off := rng.Int63n(d.Size() - 1)
		n := 1 + rng.Intn(900)
		if off+int64(n) > d.Size() {
			n = int(d.Size() - off)
		}
		if rng.Intn(2) == 0 {
			p := make([]byte, n)
			rng.Read(p)
			if _, err := d.WriteAt(ctx, p, off); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			copy(shadow[off:], p)
		} else {
			p := make([]byte, n)
			if _, err := d.ReadAt(ctx, p, off); err != nil && !errors.Is(err, io.EOF) {
				t.Fatalf("op %d read: %v", op, err)
			}
			if !bytes.Equal(p, shadow[off:off+int64(n)]) {
				t.Fatalf("op %d: read diverged at %d+%d", op, off, n)
			}
		}
	}
}

// TestCopyReconfigures4x3To6x2: the paper's Section 6 reconfiguration —
// migrate a 4x3 RAID-x onto a 6x2 RAID-x and verify contents and
// redundancy.
func TestCopyReconfigures4x3To6x2(t *testing.T) {
	ctx := context.Background()
	srcDevs, _ := mkDisks(12, 64)
	src, err := core.New(srcDevs, 4, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, src.Blocks()*int64(src.BlockSize()))
	rand.New(rand.NewSource(31)).Read(data)
	if err := src.WriteBlocks(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := src.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	dstDevs, _ := mkDisks(12, 64)
	dst, err := core.New(dstDevs, 6, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := raid.Copy(ctx, dst, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dst.ReadBlocks(ctx, 0, got[:int(dst.Blocks())*dst.BlockSize()]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("reconfigured array contents differ")
	}
	if err := dst.Verify(ctx); err != nil {
		t.Fatalf("verify after reconfiguration: %v", err)
	}
}

func TestCopyRejectsSmallDestination(t *testing.T) {
	big, _ := mkDisks(4, 64)
	small, _ := mkDisks(4, 16)
	src, _ := raid.NewRAID0(big)
	dst, _ := raid.NewRAID0(small)
	if err := raid.Copy(context.Background(), dst, src); err == nil {
		t.Fatal("copy into smaller destination accepted")
	}
}
