// Package raid implements the baseline disk array engines the paper
// compares RAID-x against: RAID-0 (striping), RAID-5 (rotated parity),
// RAID-10 (striped mirrors), and chained declustering. The RAID-x
// engine itself — the paper's contribution — lives in internal/core and
// shares this package's device interface and striping machinery.
//
// Engines are pure data movers over a set of block devices. The devices
// may be local simulated disks, or remote disks reached through the
// cooperative disk drivers (internal/cdd); the engines are oblivious.
// All engines support multi-block requests, issue per-disk I/O in
// parallel (fork-join through internal/par), merge per-disk accesses
// into contiguous runs (long sequential transfers), and survive single
// disk failures where the architecture provides redundancy.
package raid

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/store"
)

// Dev is the block device interface consumed by array engines.
// *disk.Disk implements it, as do the CDD remote-disk clients.
type Dev interface {
	// BlockSize reports the device block size in bytes.
	BlockSize() int
	// NumBlocks reports device capacity in blocks.
	NumBlocks() int64
	// ReadBlocks fills buf with len(buf)/BlockSize consecutive blocks
	// starting at b.
	ReadBlocks(ctx context.Context, b int64, buf []byte) error
	// WriteBlocks stores data as consecutive blocks starting at b.
	WriteBlocks(ctx context.Context, b int64, data []byte) error
	// WriteBlocksBackground is WriteBlocks with deferred timing: the
	// caller does not wait for the device. Contents are applied
	// immediately for simulation purposes.
	WriteBlocksBackground(ctx context.Context, b int64, data []byte) error
	// Flush waits for background work to drain.
	Flush(ctx context.Context) error
	// Healthy reports whether the device is serving requests.
	Healthy() bool
}

// Array is the logical block device an engine exposes.
type Array interface {
	// Name identifies the architecture ("raid0", "raid5", "raid10",
	// "chained", "raidx").
	Name() string
	// BlockSize reports the logical block size in bytes.
	BlockSize() int
	// Blocks reports usable capacity in blocks.
	Blocks() int64
	// ReadBlocks fills p with len(p)/BlockSize logical blocks starting
	// at b.
	ReadBlocks(ctx context.Context, b int64, p []byte) error
	// WriteBlocks stores p as logical blocks starting at b.
	WriteBlocks(ctx context.Context, b int64, p []byte) error
	// Flush waits until all deferred (background) redundancy updates
	// have drained, so the array is fully redundant.
	Flush(ctx context.Context) error
}

// Rebuilder is implemented by arrays that can reconstruct a replaced
// disk from redundancy.
type Rebuilder interface {
	// Rebuild reconstructs the full contents of (replaced) disk idx.
	Rebuild(ctx context.Context, idx int) error
}

// Verifier is implemented by arrays that can check their redundancy
// (mirror equality, parity consistency) — used by tests and scrubbing.
type Verifier interface {
	// Verify checks all redundancy and returns an error describing the
	// first inconsistency found.
	Verify(ctx context.Context) error
}

// ErrDataLoss reports that the requested data is unrecoverable (more
// failures than the redundancy covers).
var ErrDataLoss = errors.New("raid: unrecoverable data loss")

// QueueReporter is optionally implemented by devices that can report
// their pending foreground backlog (simulated disks do; remote disks do
// not). Load-balancing read policies treat devices without it as idle.
type QueueReporter interface {
	QueueBacklog() time.Duration
}

// BacklogOf reports a device's queue backlog, zero when unknown.
func BacklogOf(d Dev) time.Duration {
	if q, ok := d.(QueueReporter); ok {
		return q.QueueBacklog()
	}
	return 0
}

// BgQueueReporter is optionally implemented by devices that can report
// the pending deferred-write (background mirror) backlog. Observability
// gauges use it to expose how far redundancy convergence lags behind
// the foreground traffic.
type BgQueueReporter interface {
	BgQueueBacklog() time.Duration
}

// BgBacklogOf reports a device's background-lane backlog, zero when
// unknown.
func BgBacklogOf(d Dev) time.Duration {
	if q, ok := d.(BgQueueReporter); ok {
		return q.BgQueueBacklog()
	}
	return 0
}

// checkDevs validates a homogeneous device set and returns the common
// block size and per-device capacity.
func checkDevs(devs []Dev, min int) (blockSize int, diskBlocks int64, err error) {
	if len(devs) < min {
		return 0, 0, fmt.Errorf("raid: need at least %d devices, got %d", min, len(devs))
	}
	blockSize = devs[0].BlockSize()
	diskBlocks = devs[0].NumBlocks()
	for i, d := range devs {
		if d.BlockSize() != blockSize {
			return 0, 0, fmt.Errorf("raid: device %d block size %d != %d", i, d.BlockSize(), blockSize)
		}
		if d.NumBlocks() < diskBlocks {
			diskBlocks = d.NumBlocks()
		}
	}
	if diskBlocks == 0 {
		return 0, 0, errors.New("raid: zero-capacity device")
	}
	return blockSize, diskBlocks, nil
}

// checkRange validates a logical request against the array geometry.
func checkRange(a Array, b int64, p []byte) (blocks int, err error) {
	bs := a.BlockSize()
	if len(p) == 0 || len(p)%bs != 0 {
		return 0, &store.SizeError{Got: len(p), Want: bs}
	}
	n := len(p) / bs
	if b < 0 || b+int64(n) > a.Blocks() {
		return 0, &store.RangeError{Block: b + int64(n) - 1, Max: a.Blocks()}
	}
	return n, nil
}

// DegradedNotifier is optionally implemented by engines that can report
// reads served through redundancy reconstruction instead of a direct
// block read. The vol package wires it to a per-volume labeled counter;
// fn must be cheap and safe to call concurrently. Set it before the
// array takes I/O.
type DegradedNotifier interface {
	SetDegradedNotify(fn func(blocks int))
}
