package raid

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parity"
)

// TestRunsCoverRangeExactly: the per-column runs of any request
// partition exactly the requested logical blocks.
func TestRunsCoverRangeExactly(t *testing.T) {
	f := func(width uint8, start uint16, count uint8) bool {
		w := int(width%12) + 1
		b := int64(start % 1024)
		n := int(count%64) + 1
		m := mapping{width: w, base: 0, diskOf: func(c int) int { return c }}
		seen := map[int64]bool{}
		for _, r := range m.runs(b, n) {
			if r.col != int(r.first%int64(w)) {
				return false // run in wrong column
			}
			if r.phys != r.first/int64(w) {
				return false // wrong physical start
			}
			for t := 0; t < r.count; t++ {
				lb := r.first + int64(t)*int64(w)
				if lb < b || lb >= b+int64(n) || seen[lb] {
					return false
				}
				seen[lb] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherScatterInverse: scatter(gather(x)) == x for every run.
func TestGatherScatterInverse(t *testing.T) {
	const bs = 16
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		w := rng.Intn(8) + 1
		b := int64(rng.Intn(100))
		n := rng.Intn(40) + 1
		m := mapping{width: w, base: 0, diskOf: func(c int) int { return c }}
		user := make([]byte, n*bs)
		rng.Read(user)
		out := make([]byte, n*bs)
		for _, r := range m.runs(b, n) {
			dense := make([]byte, r.count*bs)
			m.gather(dense, user, r, b, bs)
			m.scatter(out, dense, r, b, bs)
		}
		if !bytes.Equal(out, user) {
			t.Fatalf("trial %d (w=%d b=%d n=%d): scatter∘gather != id", trial, w, b, n)
		}
	}
}

// TestXorIntoProperties: XOR algebra used by RAID-5, on the shared
// parity kernel the engines now call.
func TestXorIntoProperties(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) == 0 {
			return true
		}
		if len(b) > len(a) {
			b = b[:len(a)]
		}
		if len(b) == 0 {
			return true
		}
		orig := append([]byte(nil), a...)
		parity.XorInto(a, b)
		parity.XorInto(a, b) // involution
		return bytes.Equal(a, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
