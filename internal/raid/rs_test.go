package raid_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/raid"
)

// buildRS makes an rs array over n fresh disks with m parity shards.
func buildRS(t *testing.T, n, m int, blocks int64) (*raid.RSArray, []rawDisk) {
	t.Helper()
	devs, raw := mkDisks(n, blocks)
	a, err := raid.NewRS(devs, m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]rawDisk, len(raw))
	for i, d := range raw {
		out[i] = d
	}
	return a, out
}

type rawDisk interface {
	Fail()
	Replace() error
}

// TestRSAnyMFailures is the acceptance-criteria drill: for rs(6,2)
// every C(8,2) failure pair, and for rs(4,3) every C(7,3) triple, must
// leave all data readable (degraded reads reconstruct through the
// kernel) and writable.
func TestRSAnyMFailures(t *testing.T) {
	ctx := context.Background()
	cases := []struct{ n, m int }{{8, 2}, {7, 3}}
	for _, tc := range cases {
		var victims [][]int
		var pick func(start int, cur []int)
		pick = func(start int, cur []int) {
			if len(cur) == tc.m {
				victims = append(victims, append([]int(nil), cur...))
				return
			}
			for i := start; i < tc.n; i++ {
				pick(i+1, append(cur, i))
			}
		}
		pick(0, nil)
		for _, vs := range victims {
			a, raw := buildRS(t, tc.n, tc.m, 16)
			all := make([]byte, a.Blocks()*int64(testBS))
			fill(all, int64(31+vs[0]*100+vs[1]))
			if err := a.WriteBlocks(ctx, 0, all); err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				raw[v].Fail()
			}
			got := make([]byte, len(all))
			if err := a.ReadBlocks(ctx, 0, got); err != nil {
				t.Fatalf("rs(%d-%d,%d) victims %v: degraded read: %v", tc.n, tc.m, tc.m, vs, err)
			}
			if !bytes.Equal(got, all) {
				t.Fatalf("rs victims %v: degraded read returned wrong data", vs)
			}
			// Degraded write across a stripe boundary, then re-read.
			upd := make([]byte, 7*testBS)
			fill(upd, int64(vs[0]+7))
			if err := a.WriteBlocks(ctx, 2, upd); err != nil {
				t.Fatalf("rs victims %v: degraded write: %v", vs, err)
			}
			copy(all[2*testBS:], upd)
			if err := a.ReadBlocks(ctx, 0, got); err != nil {
				t.Fatalf("rs victims %v: read after degraded write: %v", vs, err)
			}
			if !bytes.Equal(got, all) {
				t.Fatalf("rs victims %v: data diverged after degraded write", vs)
			}
		}
	}
}

// TestRSTooManyFailures: m+1 failures must surface ErrDataLoss, not
// wrong data.
func TestRSTooManyFailures(t *testing.T) {
	ctx := context.Background()
	a, raw := buildRS(t, 8, 2, 16)
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 3)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	raw[0].Fail()
	raw[3].Fail()
	raw[5].Fail()
	err := a.ReadBlocks(ctx, 0, make([]byte, len(all)))
	if !errors.Is(err, raid.ErrDataLoss) {
		t.Fatalf("read with 3 failures: err = %v, want ErrDataLoss", err)
	}
	if err := a.WriteBlocks(ctx, 0, all[:testBS]); !errors.Is(err, raid.ErrDataLoss) {
		t.Fatalf("write with 3 failures: err = %v, want ErrDataLoss", err)
	}
}

// TestRSVerifyDetectsCorruption is the scrub integration check: flip a
// data block behind the array's back and Verify must name a parity
// mismatch; after rewriting the stripe Verify passes again.
func TestRSVerifyDetectsCorruption(t *testing.T) {
	ctx := context.Background()
	devs, _ := mkDisks(8, 16)
	a, err := raid.NewRS(devs, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 12)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify clean array: %v", err)
	}
	// Corrupt physical block 4 of device 2 directly.
	evil := make([]byte, testBS)
	fill(evil, 666)
	if err := devs[2].WriteBlocks(ctx, 4, evil); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err == nil {
		t.Fatal("verify passed over corrupted block")
	}
	// Rewriting the affected stripes re-encodes parity; Verify heals.
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ctx); err != nil {
		t.Fatalf("verify after rewrite: %v", err)
	}
}

// TestRSDegradedNotify: the DegradedNotifier hook must fire once per
// reconstructed stripe on the degraded read path and stay silent on
// healthy reads.
func TestRSDegradedNotify(t *testing.T) {
	ctx := context.Background()
	a, raw := buildRS(t, 8, 2, 16)
	var count int
	a.SetDegradedNotify(func(blocks int) { count += blocks })
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 8)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("healthy read fired notify %d times", count)
	}
	raw[1].Fail()
	if err := a.ReadBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("degraded read did not fire notify")
	}
}

func TestRSConstructorValidation(t *testing.T) {
	devs, _ := mkDisks(3, 16)
	if _, err := raid.NewRS(devs, 2); err == nil {
		t.Error("rs over 3 disks with m=2 accepted (k would be 1)")
	}
	if _, err := raid.NewRS(devs, 0); err == nil {
		t.Error("rs with m=0 accepted")
	}
	devs8, _ := mkDisks(8, 16)
	a, err := raid.NewRS(devs8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k, m := a.Shards(); k != 6 || m != 2 {
		t.Errorf("Shards() = (%d,%d), want (6,2)", k, m)
	}
	if a.Name() != "rs(6,2)" {
		t.Errorf("Name() = %q", a.Name())
	}
	// Capacity: k data blocks per stripe, stripes = per-disk blocks.
	if a.Blocks() != 16*6 {
		t.Errorf("Blocks() = %d, want 96", a.Blocks())
	}
}

// staleHealthDev reports healthy while its reads fail — what a remote
// device looks like right after the far side dies, while the client's
// TTL-cached health probe still says OK. The RS engine must fail such
// reads over to reconstruction instead of surfacing the error.
type staleHealthDev struct {
	raid.Dev
	failReads bool
}

func (d *staleHealthDev) Healthy() bool { return true }

func (d *staleHealthDev) ReadBlocks(ctx context.Context, b int64, buf []byte) error {
	if d.failReads {
		return errors.New("injected: device lost behind a stale health probe")
	}
	return d.Dev.ReadBlocks(ctx, b, buf)
}

func TestRSReadFailoverOnStaleHealth(t *testing.T) {
	ctx := context.Background()
	devs, _ := mkDisks(8, 16)
	liar1 := &staleHealthDev{Dev: devs[1]}
	liar2 := &staleHealthDev{Dev: devs[4]}
	devs[1], devs[4] = liar1, liar2
	a, err := raid.NewRS(devs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var notified int
	a.SetDegradedNotify(func(n int) { notified += n })
	all := make([]byte, a.Blocks()*int64(testBS))
	fill(all, 97)
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}

	// Both wrapped devices start erroring while still reporting
	// healthy (m=2 budget exactly consumed by runtime failures).
	liar1.failReads = true
	liar2.failReads = true
	got := make([]byte, len(all))
	if err := a.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read with 2 stale-health failures: %v", err)
	}
	if !bytes.Equal(got, all) {
		t.Fatal("failover read returned wrong data")
	}
	if notified == 0 {
		t.Error("degraded notify did not fire on runtime failover")
	}

	// Single-block read whose data shard lives on liar1: the first
	// attempt errs only d1, and liar2 is discovered one round later as
	// a dead reconstruction source — the failover loop must absorb
	// both before succeeding.
	one := make([]byte, testBS)
	if err := a.ReadBlocks(ctx, 1, one); err != nil {
		t.Fatalf("single-block read with staggered discovery: %v", err)
	}
	if !bytes.Equal(one, all[testBS:2*testBS]) {
		t.Fatal("staggered failover read returned wrong data")
	}

	// A third erring device exceeds the redundancy budget: the error
	// must propagate instead of retrying forever.
	liar3 := &staleHealthDev{Dev: devs[6], failReads: true}
	devs[6] = liar3
	if err := a.ReadBlocks(ctx, 0, got); err == nil {
		t.Fatal("read with 3 erring devices on rs(6,2) should fail")
	}
}
