package raid

import (
	"context"

	"repro/internal/bufpool"
	"repro/internal/par"
)

// seg is a contiguous per-disk physical run plus the destinations of
// each of its blocks in the caller's buffer (-1 marks a block that is
// read for reconstruction only and lands in pooled scratch).
type seg struct {
	disk int
	phys int64
	dsts []int64 // logical block numbers, aligned with physical blocks
}

// addTo appends block (disk, phys)→logical to segments, merging with
// the previous segment when physically contiguous.
func addTo(segs map[int][]seg, disk int, phys, logical int64) {
	list := segs[disk]
	if n := len(list); n > 0 {
		last := &list[n-1]
		if last.phys+int64(len(last.dsts)) == phys {
			last.dsts = append(last.dsts, logical)
			return
		}
	}
	segs[disk] = append(list, seg{disk: disk, phys: phys, dsts: []int64{logical}})
}

// runSegs executes per-disk segments in parallel. Each segment goes out
// as one vectored read whose scatter list aliases p directly (offset by
// logical block b0) — the PR-4 zero-copy path — so blocks land in the
// caller's buffer without an intermediate copy. Blocks marked -1 are
// read into a shared pooled scratch block (content discarded).
func runSegs(ctx context.Context, devs []Dev, bs int, segs map[int][]seg, p []byte, b0 int64) error {
	_, err := runSegsNoting(ctx, devs, bs, segs, p, b0)
	return err
}

// runSegsNoting is runSegs, also reporting WHICH disks failed: every
// disk's segments are attempted (one disk's error does not cancel the
// others'), and the erring disk indexes come back alongside the first
// error. Engines with redundancy to spare use the list for runtime
// read-failover — a device whose Healthy() report lags an actual
// failure (a remote disk behind a cached health probe) errors at read
// time, not at planning time.
func runSegsNoting(ctx context.Context, devs []Dev, bs int, segs map[int][]seg, p []byte, b0 int64) ([]int, error) {
	disks := make([]int, 0, len(segs))
	for d := 0; d < len(devs); d++ {
		if _, ok := segs[d]; ok {
			disks = append(disks, d)
		}
	}
	errs := make([]error, len(disks))
	_ = par.ForEach(ctx, len(disks), func(ctx context.Context, i int) error {
		disk := disks[i]
		var scratch []byte
		defer func() {
			if scratch != nil {
				bufpool.Put(scratch)
			}
		}()
		for _, sg := range segs[disk] {
			vec := make([][]byte, len(sg.dsts))
			for t, lb := range sg.dsts {
				if lb < 0 {
					if scratch == nil {
						scratch = bufpool.Get(bs)
					}
					vec[t] = scratch
					continue
				}
				vec[t] = p[(lb-b0)*int64(bs) : (lb-b0+1)*int64(bs)]
			}
			if err := ReadBlocksVec(ctx, devs[disk], sg.phys, vec); err != nil {
				errs[i] = err
				return nil
			}
		}
		return nil
	})
	var erred []int
	var first error
	for i, e := range errs {
		if e != nil {
			erred = append(erred, disks[i])
			if first == nil {
				first = e
			}
		}
	}
	return erred, first
}
