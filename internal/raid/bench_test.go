package raid_test

import (
	"context"
	"testing"

	"repro/internal/raid"
)

func benchOver(b *testing.B, build func([]raid.Dev) (raid.Array, error), blocks int, small bool) {
	b.Helper()
	devs, _ := mkDisks(12, 512)
	a, err := build(devs)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	n := 12
	if small {
		n = 1
	}
	buf := make([]byte, n*a.BlockSize())
	// Seed so RAID-5 RMW reads hit initialized parity.
	if err := a.WriteBlocks(ctx, 0, make([]byte, 24*a.BlockSize())); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlocks(ctx, int64(i%12), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkRAID0LargeWrite(b *testing.B) {
	benchOver(b, func(d []raid.Dev) (raid.Array, error) { return raid.NewRAID0(d) }, 12, false)
}

func BenchmarkRAID5SmallWrite(b *testing.B) {
	benchOver(b, func(d []raid.Dev) (raid.Array, error) { return raid.NewRAID5(d) }, 12, true)
}

func BenchmarkRAID5LargeWrite(b *testing.B) {
	benchOver(b, func(d []raid.Dev) (raid.Array, error) { return raid.NewRAID5(d) }, 12, false)
}

func BenchmarkRAID10SmallWrite(b *testing.B) {
	benchOver(b, func(d []raid.Dev) (raid.Array, error) { return raid.NewRAID10(d) }, 12, true)
}

func BenchmarkChainedLargeWrite(b *testing.B) {
	benchOver(b, func(d []raid.Dev) (raid.Array, error) { return raid.NewChained(d) }, 12, false)
}
