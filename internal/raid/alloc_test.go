package raid_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/race"
	"repro/internal/raid"
	"repro/internal/store"
)

// allocLimit runs f and fails if it averages more than limit heap
// allocations per run. All block-sized scratch on these paths comes
// from internal/bufpool, so the limits pin only the engines' own
// bookkeeping (closure fan-out, par.* machinery) — a regression that
// reintroduces per-stripe make([]byte, bs) shows up here immediately.
func allocLimit(t *testing.T, limit float64, f func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	got := testing.AllocsPerRun(100, f)
	t.Logf("%.1f allocs/op (limit %.0f)", got, limit)
	if got > limit {
		t.Errorf("%.1f allocs/op, want <= %.0f", got, limit)
	}
}

func allocDisks(t *testing.T, n int) ([]raid.Dev, []*disk.Disk) {
	t.Helper()
	devs := make([]raid.Dev, n)
	raw := make([]*disk.Disk, n)
	for i := range devs {
		d := disk.New(nil, fmt.Sprintf("d%d", i), store.NewMem(4096, 256), disk.DefaultModel())
		devs[i] = d
		raw[i] = d
	}
	return devs, raw
}

// TestAllocsAfraidSync pins the lazy-parity sync path: one write that
// dirties a stripe plus the Flush that recomputes its parity. The
// parity and read scratch are pooled; what remains is the dirty-map
// and flush fan-out bookkeeping.
func TestAllocsAfraidSync(t *testing.T) {
	devs, _ := allocDisks(t, 4)
	a, err := raid.NewAFRAID(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	allocLimit(t, 40, func() {
		if err := a.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := a.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsAfraidDegradedRead pins the reconstruct path: with a
// failed disk, reads of its blocks XOR the survivors into the caller's
// buffer through one pooled scratch block.
func TestAllocsAfraidDegradedRead(t *testing.T) {
	devs, raw := allocDisks(t, 4)
	a, err := raid.NewAFRAID(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all := make([]byte, 9*a.BlockSize())
	if err := a.WriteBlocks(ctx, 0, all); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	raw[1].Fail()
	buf := make([]byte, a.BlockSize())
	allocLimit(t, 8, func() {
		if err := a.ReadBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsRAID5SmallWrite pins the read-modify-write path: old data
// and old parity land in pooled blocks.
func TestAllocsRAID5SmallWrite(t *testing.T) {
	devs, _ := allocDisks(t, 4)
	a, err := raid.NewRAID5(devs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]byte, a.BlockSize())
	allocLimit(t, 40, func() {
		if err := a.WriteBlocks(ctx, 5, buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsRSFullStripeWrite pins the erasure-coded full-stripe
// write: data shards go out as gather lists aliasing the caller's
// buffer, parity staged in one pooled buffer per call.
func TestAllocsRSFullStripeWrite(t *testing.T) {
	devs, _ := allocDisks(t, 8)
	a, err := raid.NewRS(devs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	k, _ := a.Shards()
	buf := make([]byte, k*a.BlockSize())
	allocLimit(t, 70, func() {
		if err := a.WriteBlocks(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}
