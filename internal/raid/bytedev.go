package raid

import (
	"context"
	"fmt"
	"io"
)

// ByteDevice adapts a block Array to byte-granular I/O: arbitrary
// offsets and lengths, with read-modify-write at the block edges. It is
// the convenience layer applications use when they want a flat
// byte-addressable volume rather than a file system.
type ByteDevice struct {
	arr Array
}

// NewByteDevice wraps an array.
func NewByteDevice(arr Array) *ByteDevice { return &ByteDevice{arr: arr} }

// Size reports the device length in bytes.
func (d *ByteDevice) Size() int64 { return d.arr.Blocks() * int64(d.arr.BlockSize()) }

// Array exposes the underlying array.
func (d *ByteDevice) Array() Array { return d.arr }

// checkRange clips [off, off+n) to the device, returning the usable
// byte count (0 at or past the end).
func (d *ByteDevice) checkRange(off int64, n int) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("raid: negative offset %d", off)
	}
	size := d.Size()
	if off >= size {
		return 0, nil
	}
	if off+int64(n) > size {
		n = int(size - off)
	}
	return n, nil
}

// ReadAt fills p from byte offset off. Short reads happen only at the
// device end, where io.EOF is returned alongside the count.
func (d *ByteDevice) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	n, err := d.checkRange(off, len(p))
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, io.EOF
	}
	bs := int64(d.arr.BlockSize())
	first := off / bs
	last := (off + int64(n) - 1) / bs
	buf := make([]byte, (last-first+1)*bs)
	if err := d.arr.ReadBlocks(ctx, first, buf); err != nil {
		return 0, err
	}
	copy(p[:n], buf[off-first*bs:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt stores p at byte offset off, read-modify-writing partial
// blocks at the edges. Writes past the end are clipped with an error.
func (d *ByteDevice) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	n, err := d.checkRange(off, len(p))
	if err != nil {
		return 0, err
	}
	if n < len(p) {
		return 0, fmt.Errorf("raid: write [%d,+%d) past device end %d", off, len(p), d.Size())
	}
	bs := int64(d.arr.BlockSize())
	first := off / bs
	last := (off + int64(n) - 1) / bs
	buf := make([]byte, (last-first+1)*bs)
	headPartial := off%bs != 0
	tailPartial := (off+int64(n))%bs != 0
	// Fetch edge blocks only when the write does not cover them fully.
	if headPartial {
		if err := d.arr.ReadBlocks(ctx, first, buf[:bs]); err != nil {
			return 0, err
		}
	}
	if tailPartial && (last != first || !headPartial) {
		if err := d.arr.ReadBlocks(ctx, last, buf[len(buf)-int(bs):]); err != nil {
			return 0, err
		}
	}
	copy(buf[off-first*bs:], p[:n])
	if err := d.arr.WriteBlocks(ctx, first, buf); err != nil {
		return 0, err
	}
	return n, nil
}

// Flush drains the array's deferred redundancy updates.
func (d *ByteDevice) Flush(ctx context.Context) error { return d.arr.Flush(ctx) }

// Copy migrates the full logical contents of src onto dst — the offline
// array reconfiguration of the paper's Section 6 ("the layout can be
// reconfigured from a 4x3 array to a 6x2 array"). Block sizes may
// differ; dst must be at least as large as src in bytes. Copying runs
// in chunks and finishes with a Flush of dst.
func Copy(ctx context.Context, dst, src Array) error {
	srcBytes := src.Blocks() * int64(src.BlockSize())
	dstBytes := dst.Blocks() * int64(dst.BlockSize())
	if dstBytes < srcBytes {
		return fmt.Errorf("raid: destination (%d B) smaller than source (%d B)", dstBytes, srcBytes)
	}
	in := NewByteDevice(src)
	out := NewByteDevice(dst)
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for off := int64(0); off < srcBytes; off += chunk {
		n := chunk
		if off+int64(n) > srcBytes {
			n = int(srcBytes - off)
		}
		if _, err := in.ReadAt(ctx, buf[:n], off); err != nil && err != io.EOF {
			return err
		}
		if _, err := out.WriteAt(ctx, buf[:n], off); err != nil {
			return err
		}
	}
	return dst.Flush(ctx)
}
