package raid

import (
	"fmt"

	"repro/internal/layout"
)

// NewRAID10 builds a striped-mirror (RAID-10) array: data striped over
// disk pairs, with the primary copy on the even disk of each pair and
// the image on the odd disk at the same offset. Writes update both
// copies in the foreground; reads alternate between copies.
func NewRAID10(devs []Dev) (*RAID10, error) {
	bs, per, err := checkDevs(devs, 2)
	if err != nil {
		return nil, err
	}
	if len(devs)%2 != 0 {
		return nil, fmt.Errorf("raid10: need an even number of devices, got %d", len(devs))
	}
	lay := layout.NewRAID10(layout.Geometry{Disks: len(devs), DiskBlocks: per})
	pairs := lay.Pairs()
	a := &RAID10{mirroredArray{
		name:         "raid10",
		devs:         devs,
		bs:           bs,
		blocks:       lay.DataBlocks(),
		primary:      mapping{width: pairs, base: 0, diskOf: func(c int) int { return 2 * c }},
		mirror:       mapping{width: pairs, base: 0, diskOf: func(c int) int { return 2*c + 1 }},
		balanceReads: true,
	}}
	return a, nil
}

// RAID10 is the striped-mirror baseline.
type RAID10 struct{ mirroredArray }

// NewChained builds a chained-declustering array (Hsiao–DeWitt; the
// paper's Figure 1b): disk i's data half is mirrored into the mirror
// half of disk (i+1) mod n. Like RAID-10, both copies are written in
// the foreground — the scattered, synchronous mirror updates are what
// RAID-x's clustered background mirror groups improve upon.
func NewChained(devs []Dev) (*Chained, error) {
	bs, per, err := checkDevs(devs, 2)
	if err != nil {
		return nil, err
	}
	lay := layout.NewChained(layout.Geometry{Disks: len(devs), DiskBlocks: per})
	n := len(devs)
	a := &Chained{mirroredArray{
		name:         "chained",
		devs:         devs,
		bs:           bs,
		blocks:       lay.DataBlocks(),
		primary:      mapping{width: n, base: 0, diskOf: func(c int) int { return c }},
		mirror:       mapping{width: n, base: per / 2, diskOf: func(c int) int { return (c + 1) % n }},
		balanceReads: true,
	}}
	return a, nil
}

// Chained is the chained-declustering baseline.
type Chained struct{ mirroredArray }
