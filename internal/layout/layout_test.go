package layout

import (
	"testing"
	"testing/quick"
)

func TestRAID0RoundRobin(t *testing.T) {
	l := NewRAID0(Geometry{Disks: 4, DiskBlocks: 8})
	if l.DataBlocks() != 32 {
		t.Fatalf("DataBlocks = %d, want 32", l.DataBlocks())
	}
	want := map[int64]Loc{0: {0, 0}, 1: {1, 0}, 3: {3, 0}, 4: {0, 1}, 9: {1, 2}}
	for b, w := range want {
		if got := l.DataLoc(b); got != w {
			t.Errorf("DataLoc(%d) = %v, want %v", b, got, w)
		}
	}
}

func TestRAID10PairPlacement(t *testing.T) {
	l := NewRAID10(Geometry{Disks: 6, DiskBlocks: 4})
	if l.Pairs() != 3 {
		t.Fatalf("Pairs = %d, want 3", l.Pairs())
	}
	if l.DataBlocks() != 12 {
		t.Fatalf("DataBlocks = %d, want 12", l.DataBlocks())
	}
	for b := int64(0); b < l.DataBlocks(); b++ {
		d, m := l.DataLoc(b), l.MirrorLoc(b)
		if d.Disk%2 != 0 || m.Disk != d.Disk+1 {
			t.Errorf("block %d: data %v mirror %v, want even/odd pair", b, d, m)
		}
		if d.Block != m.Block {
			t.Errorf("block %d: copies at different offsets %v %v", b, d, m)
		}
	}
}

func TestRAID10RejectsOddDisks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd disk count")
		}
	}()
	NewRAID10(Geometry{Disks: 5, DiskBlocks: 4})
}

// TestChainedPaperFigure1b checks skewed mirroring: disk i's data is
// mirrored on disk i+1 (mod n), in the mirror half.
func TestChainedPaperFigure1b(t *testing.T) {
	l := NewChained(Geometry{Disks: 4, DiskBlocks: 12})
	if l.DataBlocks() != 24 {
		t.Fatalf("DataBlocks = %d, want 24", l.DataBlocks())
	}
	for b := int64(0); b < l.DataBlocks(); b++ {
		d, m := l.DataLoc(b), l.MirrorLoc(b)
		if m.Disk != (d.Disk+1)%4 {
			t.Errorf("block %d: mirror on disk %d, want %d", b, m.Disk, (d.Disk+1)%4)
		}
		if m.Block != 6+d.Block {
			t.Errorf("block %d: mirror offset %d, want %d", b, m.Block, 6+d.Block)
		}
	}
}

func TestChainedOrthogonality(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 12} {
		l := NewChained(Geometry{Disks: n, DiskBlocks: 16})
		for b := int64(0); b < l.DataBlocks(); b++ {
			if l.DataLoc(b).Disk == l.MirrorLoc(b).Disk {
				t.Fatalf("n=%d: block %d mirrored onto its own disk", n, b)
			}
		}
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	l := NewRAID5(Geometry{Disks: 4, DiskBlocks: 8})
	if l.DataBlocks() != 24 {
		t.Fatalf("DataBlocks = %d, want 24", l.DataBlocks())
	}
	seen := map[int]bool{}
	for s := int64(0); s < 4; s++ {
		seen[l.ParityDisk(s)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("parity visited %d disks over 4 stripes, want 4", len(seen))
	}
}

// TestRAID5StripeCoversAllDisks: a stripe's data blocks plus its parity
// block cover every disk exactly once, all at the same offset.
func TestRAID5StripeCoversAllDisks(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 12} {
		l := NewRAID5(Geometry{Disks: n, DiskBlocks: 16})
		for s := int64(0); s < 16; s++ {
			used := map[int]bool{l.ParityDisk(s): true}
			if l.ParityLoc(s).Block != s {
				t.Fatalf("n=%d: parity of stripe %d at offset %d", n, s, l.ParityLoc(s).Block)
			}
			for _, b := range l.StripeBlocks(s) {
				loc := l.DataLoc(b)
				if loc.Block != s {
					t.Fatalf("n=%d: block %d of stripe %d at offset %d", n, b, s, loc.Block)
				}
				if used[loc.Disk] {
					t.Fatalf("n=%d: stripe %d reuses disk %d", n, s, loc.Disk)
				}
				used[loc.Disk] = true
			}
			if len(used) != n {
				t.Fatalf("n=%d: stripe %d covers %d disks, want %d", n, s, len(used), n)
			}
		}
	}
}

func TestRAID5StripeOfInvertsStripeBlocks(t *testing.T) {
	l := NewRAID5(Geometry{Disks: 5, DiskBlocks: 8})
	for s := int64(0); s < 8; s++ {
		for j, b := range l.StripeBlocks(s) {
			gs, gj := l.StripeOf(b)
			if gs != s || gj != j {
				t.Fatalf("StripeOf(%d) = (%d,%d), want (%d,%d)", b, gs, gj, s, j)
			}
		}
	}
}

// TestMirroredLayoutsInjective property-checks that for each mirrored
// layout, data and mirror locations are collision-free and disjoint.
func TestMirroredLayoutsInjective(t *testing.T) {
	layouts := map[string]Mirrorer{
		"raid10":  NewRAID10(Geometry{Disks: 6, DiskBlocks: 10}),
		"chained": NewChained(Geometry{Disks: 5, DiskBlocks: 10}),
		"osm":     NewOSM(5, 1, 20),
	}
	for name, l := range layouts {
		seen := map[Loc]bool{}
		for b := int64(0); b < l.DataBlocks(); b++ {
			for _, loc := range []Loc{l.DataLoc(b), l.MirrorLoc(b)} {
				if seen[loc] {
					t.Fatalf("%s: location %v used twice", name, loc)
				}
				seen[loc] = true
			}
		}
	}
}

// Property: RAID-0 DataLoc is a bijection between [0, DataBlocks) and
// the full disk/offset grid.
func TestRAID0BijectionProperty(t *testing.T) {
	f := func(disks uint8, blocks uint8, b1, b2 uint16) bool {
		n := int(disks%16) + 1
		per := int64(blocks%32) + 1
		l := NewRAID0(Geometry{Disks: n, DiskBlocks: per})
		x := int64(b1) % l.DataBlocks()
		y := int64(b2) % l.DataBlocks()
		lx, ly := l.DataLoc(x), l.DataLoc(y)
		if x != y && lx == ly {
			return false
		}
		// Invertibility: disk + offset*n reconstructs the block.
		return int64(lx.Disk)+lx.Block*int64(n) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: chained declustering's data and mirror maps are injective
// and orthogonal for random geometries and blocks.
func TestChainedQuickProperties(t *testing.T) {
	f := func(disks uint8, per uint8, b1 uint16) bool {
		n := int(disks%15) + 2
		blocks := int64(per%64)*2 + 4
		l := NewChained(Geometry{Disks: n, DiskBlocks: blocks})
		if l.DataBlocks() == 0 {
			return true
		}
		b := int64(b1) % l.DataBlocks()
		d, m := l.DataLoc(b), l.MirrorLoc(b)
		if d.Disk == m.Disk {
			return false
		}
		// Data in lower half, mirror in upper half.
		return d.Block < blocks/2 && m.Block >= blocks/2 && m.Block < blocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAID-10 primary and mirror never collide and live on the
// same pair.
func TestRAID10QuickProperties(t *testing.T) {
	f := func(pairs uint8, per uint8, b1 uint16) bool {
		p := int(pairs%8) + 1
		blocks := int64(per%64) + 1
		l := NewRAID10(Geometry{Disks: 2 * p, DiskBlocks: blocks})
		b := int64(b1) % l.DataBlocks()
		d, m := l.DataLoc(b), l.MirrorLoc(b)
		return d.Disk%2 == 0 && m.Disk == d.Disk+1 && d.Block == m.Block && d.Block < blocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAID-5 DataLoc never lands on the stripe's parity disk.
func TestRAID5QuickAvoidsParity(t *testing.T) {
	f := func(disks uint8, per uint8, b1 uint16) bool {
		n := int(disks%14) + 3
		blocks := int64(per%64) + 1
		l := NewRAID5(Geometry{Disks: n, DiskBlocks: blocks})
		b := int64(b1) % l.DataBlocks()
		s, _ := l.StripeOf(b)
		return l.DataLoc(b).Disk != l.ParityDisk(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
