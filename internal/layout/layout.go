// Package layout defines the block placement policies of every disk
// array architecture in the paper: RAID-0 striping, RAID-5 rotated
// parity, RAID-10 striped mirrors, chained declustering, and the
// paper's contribution — orthogonal striping and mirroring (OSM).
//
// A layout is pure address arithmetic: it maps logical block numbers to
// physical (disk, block) locations. The array engines in internal/raid
// and internal/core move data according to these maps; the property
// tests in this package verify the invariants the paper claims (no data
// block shares a disk with its image, the images of one stripe group
// land on exactly two disks, mirror groups are physically contiguous).
package layout

import "fmt"

// Loc identifies one physical block: disk index within the array, and
// block offset within that disk.
type Loc struct {
	Disk  int
	Block int64
}

func (l Loc) String() string { return fmt.Sprintf("D%d:%d", l.Disk, l.Block) }

// Geometry describes the raw array: number of disks and blocks per disk.
type Geometry struct {
	Disks      int
	DiskBlocks int64
}

func (g Geometry) validate() {
	if g.Disks < 1 {
		panic(fmt.Sprintf("layout: %d disks", g.Disks))
	}
	if g.DiskBlocks < 1 {
		panic(fmt.Sprintf("layout: %d blocks per disk", g.DiskBlocks))
	}
}

// Striper is implemented by every layout: the map from logical data
// blocks to their primary physical location.
type Striper interface {
	// DataBlocks reports usable capacity in blocks.
	DataBlocks() int64
	// DataLoc maps a logical block to its primary location.
	DataLoc(b int64) Loc
}

// Mirrorer is implemented by layouts that keep a second copy of every
// block (RAID-10, chained declustering, OSM).
type Mirrorer interface {
	Striper
	// MirrorLoc maps a logical block to the location of its image.
	MirrorLoc(b int64) Loc
}

// RAID0 stripes blocks round-robin over all disks with no redundancy.
type RAID0 struct{ Geo Geometry }

// NewRAID0 creates a RAID-0 layout.
func NewRAID0(geo Geometry) RAID0 {
	geo.validate()
	return RAID0{Geo: geo}
}

// DataBlocks implements Striper.
func (l RAID0) DataBlocks() int64 { return int64(l.Geo.Disks) * l.Geo.DiskBlocks }

// DataLoc implements Striper.
func (l RAID0) DataLoc(b int64) Loc {
	n := int64(l.Geo.Disks)
	return Loc{Disk: int(b % n), Block: b / n}
}

// RAID10 stripes data over mirrored pairs of disks: block b lives on
// pair (b mod Disks/2), with the primary copy on the even disk of the
// pair and the image on the odd disk at the same offset. Disks must be
// even and at least 2.
type RAID10 struct{ Geo Geometry }

// NewRAID10 creates a RAID-10 layout.
func NewRAID10(geo Geometry) RAID10 {
	geo.validate()
	if geo.Disks%2 != 0 {
		panic(fmt.Sprintf("layout: RAID-10 needs an even disk count, got %d", geo.Disks))
	}
	return RAID10{Geo: geo}
}

// Pairs reports the number of mirrored pairs.
func (l RAID10) Pairs() int { return l.Geo.Disks / 2 }

// DataBlocks implements Striper.
func (l RAID10) DataBlocks() int64 { return int64(l.Pairs()) * l.Geo.DiskBlocks }

// DataLoc implements Striper.
func (l RAID10) DataLoc(b int64) Loc {
	p := int64(l.Pairs())
	return Loc{Disk: int(b%p) * 2, Block: b / p}
}

// MirrorLoc implements Mirrorer.
func (l RAID10) MirrorLoc(b int64) Loc {
	p := int64(l.Pairs())
	return Loc{Disk: int(b%p)*2 + 1, Block: b / p}
}

// Chained is Hsiao–DeWitt chained declustering (the paper's Figure 1b):
// the data area of disk i holds blocks b with b mod n == i, and the
// mirror area of disk (i+1) mod n holds their images at the same
// relative offsets — "skewed mirroring".
type Chained struct{ Geo Geometry }

// NewChained creates a chained-declustering layout. At least 2 disks.
func NewChained(geo Geometry) Chained {
	geo.validate()
	if geo.Disks < 2 {
		panic("layout: chained declustering needs >= 2 disks")
	}
	return Chained{Geo: geo}
}

// DataBlocks implements Striper. Half of each disk holds data, half
// holds images.
func (l Chained) DataBlocks() int64 { return int64(l.Geo.Disks) * (l.Geo.DiskBlocks / 2) }

// DataLoc implements Striper.
func (l Chained) DataLoc(b int64) Loc {
	n := int64(l.Geo.Disks)
	return Loc{Disk: int(b % n), Block: b / n}
}

// MirrorLoc implements Mirrorer.
func (l Chained) MirrorLoc(b int64) Loc {
	n := int64(l.Geo.Disks)
	return Loc{Disk: int((b%n + 1) % n), Block: l.Geo.DiskBlocks/2 + b/n}
}

// RAID5 is block-interleaved distributed parity with rotating parity
// placement. Stripe s places its parity on disk (n-1 - s mod n) and its
// n-1 data blocks on the remaining disks in cyclic order after the
// parity disk.
type RAID5 struct{ Geo Geometry }

// NewRAID5 creates a RAID-5 layout. At least 3 disks.
func NewRAID5(geo Geometry) RAID5 {
	geo.validate()
	if geo.Disks < 3 {
		panic("layout: RAID-5 needs >= 3 disks")
	}
	return RAID5{Geo: geo}
}

// DataBlocks implements Striper.
func (l RAID5) DataBlocks() int64 { return int64(l.Geo.Disks-1) * l.Geo.DiskBlocks }

// StripeOf reports the stripe number and the index within the stripe of
// logical block b.
func (l RAID5) StripeOf(b int64) (stripe int64, j int) {
	n := int64(l.Geo.Disks - 1)
	return b / n, int(b % n)
}

// ParityDisk reports which disk holds the parity of stripe s.
func (l RAID5) ParityDisk(s int64) int {
	n := int64(l.Geo.Disks)
	return int((n - 1 - s%n) % n)
}

// ParityLoc reports where the parity block of stripe s lives.
func (l RAID5) ParityLoc(s int64) Loc {
	return Loc{Disk: l.ParityDisk(s), Block: s}
}

// DataLoc implements Striper.
func (l RAID5) DataLoc(b int64) Loc {
	s, j := l.StripeOf(b)
	pd := l.ParityDisk(s)
	return Loc{Disk: (pd + 1 + j) % l.Geo.Disks, Block: s}
}

// StripeBlocks returns the logical blocks of stripe s in order.
func (l RAID5) StripeBlocks(s int64) []int64 {
	n := int64(l.Geo.Disks - 1)
	out := make([]int64, n)
	for j := range out {
		out[j] = s*n + int64(j)
	}
	return out
}
