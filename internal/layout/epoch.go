package layout

import (
	"errors"
	"fmt"
)

// This file adds online membership to OSM: generation-numbered layout
// epochs. An Epoch is an immutable placement map — the base OSM
// arithmetic plus a sparse set of per-block overrides accumulated by
// grow/shrink steps. Epoch g+1 is derived from epoch g by a minimal-
// movement rebalance: only enough blocks move to restore per-disk
// balance (±1 block), and a block never "moves" to the disk it is
// already on.
//
// Placement invariants maintained across every step:
//
//   - usable capacity is fixed at the base geometry's DataBlocks: a
//     grow adds bandwidth and headroom, not address space (the SIOS
//     size a client mounted at epoch 0 stays valid at every epoch);
//   - the data blocks of each disk always occupy a contiguous prefix
//     of its data half (donors give away their highest offsets,
//     receivers fill upward), so resync and rebuild scans stay
//     sequential;
//   - orthogonality: a block and its image never share a node. On a
//     grow by whole nodes no image ever moves (moved data lands on the
//     new nodes, away from every existing image), which is why grow
//     migration traffic is exactly the data-movement minimum. On a
//     shrink, images on removed disks — and images whose block was
//     rebalanced onto their node — relocate into free mirror-half
//     slots elsewhere.
//
// The override maps answer "where is block b" for the new epoch while
// the previous Epoch value still answers for the old one — the core
// engine holds both during a migration and picks by migration cursor.

// ErrNoMirrorSpace is returned by a shrink whose relocated images do
// not fit in the surviving disks' free mirror-half slots.
var ErrNoMirrorSpace = errors.New("layout: no mirror-half space for relocated images")

// ErrDataOverflow is returned when a shrink would need more data-half
// space per surviving disk than the geometry has.
var ErrDataOverflow = errors.New("layout: rebalance overflows data half")

// StepSpec describes one membership change. Exactly one field is set.
// Steps are tiny and serializable: peers rebuild the full (and fully
// deterministic) override maps from the base geometry plus the step
// list instead of shipping the maps around.
type StepSpec struct {
	// Add is the number of whole nodes appended (each with the base
	// DisksPerNode disks).
	Add int `json:"add,omitempty"`
	// Remove is the number of nodes retired from the tail.
	Remove int `json:"remove,omitempty"`
}

// EpochDesc is the wire/disk form of an Epoch: base geometry plus the
// step list. Replaying the steps reproduces the epoch exactly.
type EpochDesc struct {
	Nodes        int        `json:"nodes"`
	DisksPerNode int        `json:"disks_per_node"`
	DiskBlocks   int64      `json:"disk_blocks"`
	Steps        []StepSpec `json:"steps,omitempty"`
}

// Gen reports the generation the descriptor describes.
func (d EpochDesc) Gen() uint64 { return uint64(len(d.Steps)) }

// Epoch is one generation of an OSM layout under online membership.
// The zero generation is pure OSM arithmetic; later generations add
// sparse overrides. Epochs are immutable once built — Grow and Shrink
// return new values — so a pointer can be published with the same COW
// snapshot discipline as the engine's device table.
type Epoch struct {
	base  OSM
	steps []StepSpec

	nodes   int    // current node count (active)
	nodeOf  []int  // disk index -> node id (stable across epochs)
	localOf []int  // disk index -> local disk index on its node
	active  []bool // false once a disk's node has been retired

	dataCount []int64   // data blocks per disk (contiguous prefix)
	mirUsed   []int64   // mirror-half blocks in use per disk (load metric)
	mirTop    []int64   // mirror-half append frontier per disk
	mirFree   [][]int64 // vacated mirror slots below the frontier, sorted

	dataOver map[int64]Loc // logical block -> data home, iff off base
	mirOver  map[int64]Loc // logical block -> image home, iff off base
	dataRev  map[Loc]int64 // inverse of dataOver
	mirRev   map[Loc]int64 // inverse of mirOver

	movedData int64 // data blocks moved by the latest step
	movedMir  int64 // images moved by the latest step
}

// NewEpoch wraps a base OSM layout as generation zero.
func NewEpoch(base OSM) *Epoch {
	w := base.TotalDisks()
	e := &Epoch{
		base:      base,
		nodes:     base.Nodes,
		nodeOf:    make([]int, w),
		localOf:   make([]int, w),
		active:    make([]bool, w),
		dataCount: make([]int64, w),
		mirUsed:   make([]int64, w),
		mirTop:    make([]int64, w),
		mirFree:   make([][]int64, w),
		dataOver:  map[int64]Loc{},
		mirOver:   map[int64]Loc{},
		dataRev:   map[Loc]int64{},
		mirRev:    map[Loc]int64{},
	}
	perDisk := base.GroupSlotsPerDisk() * int64(base.GroupSize())
	for d := 0; d < w; d++ {
		e.nodeOf[d] = base.NodeOfDisk(d)
		e.localOf[d] = base.LocalIndexOfDisk(d)
		e.active[d] = true
		e.dataCount[d] = perDisk // data half: blocks b ≡ d (mod w)
		e.mirUsed[d] = perDisk   // mirror half: packed group slots
		e.mirTop[d] = perDisk
	}
	return e
}

// EpochFromDesc replays a descriptor into an Epoch. The reconstruction
// is deterministic: two peers replaying the same descriptor agree on
// every block's location.
func EpochFromDesc(d EpochDesc) (*Epoch, error) {
	e := NewEpoch(NewOSM(d.Nodes, d.DisksPerNode, d.DiskBlocks))
	for i, s := range d.Steps {
		var err error
		switch {
		case s.Add > 0 && s.Remove == 0:
			e, err = e.Grow(s.Add)
		case s.Remove > 0 && s.Add == 0:
			e, err = e.Shrink(s.Remove)
		default:
			err = fmt.Errorf("layout: step %d is neither grow nor shrink", i)
		}
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Desc returns the serializable descriptor of this epoch.
func (e *Epoch) Desc() EpochDesc {
	return EpochDesc{
		Nodes:        e.base.Nodes,
		DisksPerNode: e.base.DisksPerNode,
		DiskBlocks:   e.base.DiskBlocks,
		Steps:        append([]StepSpec(nil), e.steps...),
	}
}

// Gen reports the generation number: the count of completed membership
// steps since the base layout.
func (e *Epoch) Gen() uint64 { return uint64(len(e.steps)) }

// Base returns the epoch-zero OSM geometry.
func (e *Epoch) Base() OSM { return e.base }

// Trivial reports whether this epoch is plain OSM arithmetic (no
// overrides), letting engines keep the allocation-free fast paths.
func (e *Epoch) Trivial() bool { return len(e.steps) == 0 }

// Width reports the total number of disk slots (including retired
// ones, which keep their indices so physical locations stay stable).
func (e *Epoch) Width() int { return len(e.nodeOf) }

// Nodes reports the current number of active nodes.
func (e *Epoch) Nodes() int { return e.nodes }

// NodeOf reports which node disk d is attached to.
func (e *Epoch) NodeOf(d int) int { return e.nodeOf[d] }

// LocalOf reports disk d's index among its node's local disks. Together
// with NodeOf it defines the epoch's column order, which is how a
// restarting mount rebuilds its device table: column d is local disk
// LocalOf(d) of node NodeOf(d). (A grown cluster's column order is NOT
// the fresh-mount interleave at the new node count — base columns
// interleave at the base node count and grown columns are appended.)
func (e *Epoch) LocalOf(d int) int { return e.localOf[d] }

// Active reports whether disk d is still a member (false once its node
// has been retired by a shrink).
func (e *Epoch) Active(d int) bool { return d < len(e.active) && e.active[d] }

// GroupSize reports the mirror group size, fixed at the base geometry.
func (e *Epoch) GroupSize() int { return e.base.GroupSize() }

// DataBlocks implements Striper. Capacity is fixed at the base
// geometry across every epoch.
func (e *Epoch) DataBlocks() int64 { return e.base.DataBlocks() }

// DataCounts returns a copy of the per-disk data block counts.
func (e *Epoch) DataCounts() []int64 { return append([]int64(nil), e.dataCount...) }

// MovedByLastStep reports how many data blocks and images the most
// recent membership step relocated.
func (e *Epoch) MovedByLastStep() (data, images int64) { return e.movedData, e.movedMir }

// DataLoc implements Striper for this generation.
func (e *Epoch) DataLoc(b int64) Loc {
	if len(e.dataOver) != 0 {
		if l, ok := e.dataOver[b]; ok {
			return l
		}
	}
	return e.base.DataLoc(b)
}

// MirrorLoc implements Mirrorer for this generation.
func (e *Epoch) MirrorLoc(b int64) Loc {
	if len(e.mirOver) != 0 {
		if l, ok := e.mirOver[b]; ok {
			return l
		}
	}
	return e.base.MirrorLoc(b)
}

// Moved reports whether block b's data or image sits somewhere other
// than its base-arithmetic home in this epoch.
func (e *Epoch) Moved(b int64) (data, image bool) {
	_, data = e.dataOver[b]
	_, image = e.mirOver[b]
	return
}

// DataSource reports which logical block is stored at data location
// (d, pb) in this epoch, if any. It inverts DataLoc.
func (e *Epoch) DataSource(d int, pb int64) (int64, bool) {
	if b, ok := e.dataRev[Loc{Disk: d, Block: pb}]; ok {
		return b, true
	}
	w := int64(e.base.TotalDisks())
	if int64(d) >= w || pb < 0 {
		return 0, false
	}
	b := pb*w + int64(d)
	if b >= e.base.DataBlocks() {
		return 0, false
	}
	if _, moved := e.dataOver[b]; moved {
		return 0, false // vacated by a rebalance
	}
	return b, true
}

// MirrorSource reports which logical block's image is stored at
// location (d, pb) in this epoch, if any. It inverts MirrorLoc.
func (e *Epoch) MirrorSource(d int, pb int64) (int64, bool) {
	if b, ok := e.mirRev[Loc{Disk: d, Block: pb}]; ok {
		return b, true
	}
	w0 := e.base.TotalDisks()
	if d >= w0 {
		return 0, false // new disks hold no base-arithmetic images
	}
	mb := e.base.DiskBlocks / 2
	gs := int64(e.base.GroupSize())
	if pb < mb || pb >= mb+e.base.GroupSlotsPerDisk()*gs {
		return 0, false
	}
	slot := (pb - mb) / gs
	j := (pb - mb) % gs
	// Each disk owns exactly one group out of every w0 consecutive
	// groups; scan the slot's window for the one that lands here.
	for g := slot * int64(w0); g < (slot+1)*int64(w0); g++ {
		if e.base.MirrorDisk(g) != d {
			continue
		}
		b := g*gs + j
		if b >= e.base.DataBlocks() {
			return 0, false
		}
		if _, moved := e.mirOver[b]; moved {
			return 0, false
		}
		return b, true
	}
	return 0, false
}

// clone deep-copies the epoch so a step can mutate freely.
func (e *Epoch) clone() *Epoch {
	n := &Epoch{
		base:      e.base,
		steps:     append([]StepSpec(nil), e.steps...),
		nodes:     e.nodes,
		nodeOf:    append([]int(nil), e.nodeOf...),
		localOf:   append([]int(nil), e.localOf...),
		active:    append([]bool(nil), e.active...),
		dataCount: append([]int64(nil), e.dataCount...),
		mirUsed:   append([]int64(nil), e.mirUsed...),
		mirTop:    append([]int64(nil), e.mirTop...),
		mirFree:   make([][]int64, len(e.mirFree)),
		dataOver:  make(map[int64]Loc, len(e.dataOver)),
		mirOver:   make(map[int64]Loc, len(e.mirOver)),
		dataRev:   make(map[Loc]int64, len(e.dataRev)),
		mirRev:    make(map[Loc]int64, len(e.mirRev)),
	}
	for d, f := range e.mirFree {
		n.mirFree[d] = append([]int64(nil), f...)
	}
	for k, v := range e.dataOver {
		n.dataOver[k] = v
	}
	for k, v := range e.mirOver {
		n.mirOver[k] = v
	}
	for k, v := range e.dataRev {
		n.dataRev[k] = v
	}
	for k, v := range e.mirRev {
		n.mirRev[k] = v
	}
	return n
}

// setData records block b's new data home, keeping the inverse map and
// the "override iff off base" normalization.
func (e *Epoch) setData(b int64, to Loc) {
	if cur, ok := e.dataOver[b]; ok {
		delete(e.dataRev, cur)
	}
	if to == e.base.DataLoc(b) {
		delete(e.dataOver, b)
		return
	}
	e.dataOver[b] = to
	e.dataRev[to] = b
}

// setMirror records block b's new image home. The vacated slot goes on
// its disk's free list so a later relocation can reuse it.
func (e *Epoch) setMirror(b int64, to Loc) {
	cur, overridden := e.mirOver[b]
	if !overridden {
		cur = e.base.MirrorLoc(b)
	} else {
		delete(e.mirRev, cur)
	}
	e.freeMirrorSlot(cur)
	e.mirUsed[to.Disk]++
	if to == e.base.MirrorLoc(b) {
		delete(e.mirOver, b)
		return
	}
	e.mirOver[b] = to
	e.mirRev[to] = b
}

// freeMirrorSlot returns a mirror-half slot to its disk's allocator,
// keeping the free list sorted so allocation is deterministic. Free
// slots are tracked as offsets relative to the mirror base, matching
// allocMirrorSlot.
func (e *Epoch) freeMirrorSlot(l Loc) {
	e.mirUsed[l.Disk]--
	off := l.Block - e.base.DiskBlocks/2
	f := e.mirFree[l.Disk]
	i := 0
	for i < len(f) && f[i] < off {
		i++
	}
	f = append(f, 0)
	copy(f[i+1:], f[i:])
	f[i] = off
	e.mirFree[l.Disk] = f
}

// allocMirrorSlot takes the lowest free mirror-base-relative slot on
// disk d, extending the append frontier when the free list is empty.
// Second result is false when the mirror half is full.
func (e *Epoch) allocMirrorSlot(d int) (int64, bool) {
	if f := e.mirFree[d]; len(f) > 0 {
		off := f[0]
		e.mirFree[d] = f[1:]
		return off, true
	}
	if e.mirTop[d] < e.base.DiskBlocks/2 {
		off := e.mirTop[d]
		e.mirTop[d]++
		return off, true
	}
	return 0, false
}

// Grow returns the next epoch after appending add whole nodes, each
// with the base DisksPerNode disks. New disk indices follow the SIOS
// interleave among the new nodes: appended disk w + l·add + m is local
// disk l of new node (nodes + m).
func (e *Epoch) Grow(add int) (*Epoch, error) {
	if add < 1 {
		return nil, fmt.Errorf("layout: grow by %d nodes", add)
	}
	n := e.clone()
	n.steps = append(n.steps, StepSpec{Add: add})
	k := e.base.DisksPerNode
	for l := 0; l < k; l++ {
		for m := 0; m < add; m++ {
			n.nodeOf = append(n.nodeOf, e.nodes+m)
			n.localOf = append(n.localOf, l)
			n.active = append(n.active, true)
			n.dataCount = append(n.dataCount, 0)
			n.mirUsed = append(n.mirUsed, 0)
			n.mirTop = append(n.mirTop, 0)
			n.mirFree = append(n.mirFree, nil)
		}
	}
	n.nodes += add
	if err := n.rebalance(); err != nil {
		return nil, err
	}
	return n, nil
}

// Shrink returns the next epoch after retiring remove nodes from the
// tail. Their disks keep their indices but become inactive; every
// block and image they held relocates onto the survivors.
func (e *Epoch) Shrink(remove int) (*Epoch, error) {
	if remove < 1 {
		return nil, fmt.Errorf("layout: shrink by %d nodes", remove)
	}
	if e.nodes-remove < 2 {
		return nil, fmt.Errorf("layout: shrink %d→%d nodes: need >= 2", e.nodes, e.nodes-remove)
	}
	n := e.clone()
	n.steps = append(n.steps, StepSpec{Remove: remove})
	cut := e.nodes - remove
	for d := range n.nodeOf {
		if n.nodeOf[d] >= cut {
			n.active[d] = false
		}
	}
	n.nodes = cut
	if err := n.rebalance(); err != nil {
		return nil, err
	}
	return n, nil
}

// rebalance restores ±1 data balance over the active disks with the
// minimum number of moves, then relocates any image stranded on an
// inactive disk or left sharing a node with its (moved) block.
func (n *Epoch) rebalance() error {
	b := n.base.DataBlocks()
	half := n.base.DiskBlocks / 2
	var act []int
	for d, a := range n.active {
		if a {
			act = append(act, d)
		}
	}
	w := int64(len(act))

	// Per-disk targets: B/W each, remainder to the lowest-indexed
	// active disks. Donors give their highest offsets, receivers fill
	// upward, so every disk's data stays a contiguous prefix.
	target := make([]int64, len(n.nodeOf))
	per, rem := b/w, b%w
	for i, d := range act {
		target[d] = per
		if int64(i) < rem {
			target[d]++
		}
		if target[d] > half {
			return fmt.Errorf("%w: disk %d needs %d of %d data blocks", ErrDataOverflow, d, target[d], half)
		}
	}

	type slot struct {
		d   int
		off int64
	}
	var give, take []slot
	for d := range n.nodeOf {
		for off := target[d]; off < n.dataCount[d]; off++ {
			give = append(give, slot{d, off})
		}
	}
	for _, d := range act {
		for off := n.dataCount[d]; off < target[d]; off++ {
			take = append(take, slot{d, off})
		}
	}
	if len(give) != len(take) {
		panic(fmt.Sprintf("layout: rebalance gives %d takes %d", len(give), len(take)))
	}

	moved := make([]int64, 0, len(give))
	for i, g := range give {
		lb, ok := n.DataSource(g.d, g.off)
		if !ok {
			panic(fmt.Sprintf("layout: no block at donated slot D%d:%d", g.d, g.off))
		}
		n.setData(lb, Loc{Disk: take[i].d, Block: take[i].off})
		moved = append(moved, lb)
	}
	for d := range n.nodeOf {
		n.dataCount[d] = target[d]
	}
	n.movedData = int64(len(give))
	n.movedMir = 0

	// Images stranded on retired disks must relocate. A plain grow
	// never enters this loop (nothing is retired) and its moved data
	// all lands on brand-new nodes that hold no images, so grow
	// migration traffic is pure data movement.
	retired := false
	for _, a := range n.active {
		if !a {
			retired = true
			break
		}
	}
	if retired {
		for lb := int64(0); lb < b; lb++ {
			if !n.active[n.MirrorLoc(lb).Disk] {
				if err := n.relocateImage(lb); err != nil {
					return err
				}
			}
		}
	}
	// Rebalanced blocks whose new home shares a node with their image
	// violate orthogonality; move the image, not the block (the block's
	// placement is what balance depends on).
	for _, lb := range moved {
		if n.nodeOf[n.DataLoc(lb).Disk] == n.nodeOf[n.MirrorLoc(lb).Disk] {
			if err := n.relocateImage(lb); err != nil {
				return err
			}
		}
	}
	return nil
}

// relocateImage finds block lb's image a new home: the least-loaded
// active disk (lowest index breaking ties, so the choice is
// deterministic) with a free mirror slot on any node other than the
// block's data node.
func (n *Epoch) relocateImage(lb int64) error {
	half := n.base.DiskBlocks / 2
	dataNode := n.nodeOf[n.DataLoc(lb).Disk]
	best := -1
	for d, a := range n.active {
		if !a || n.nodeOf[d] == dataNode {
			continue
		}
		if len(n.mirFree[d]) == 0 && n.mirTop[d] >= half {
			continue // full
		}
		if best < 0 || n.mirUsed[d] < n.mirUsed[best] {
			best = d
		}
	}
	if best < 0 {
		return fmt.Errorf("%w: block %d", ErrNoMirrorSpace, lb)
	}
	off, ok := n.allocMirrorSlot(best)
	if !ok {
		return fmt.Errorf("%w: block %d", ErrNoMirrorSpace, lb)
	}
	n.setMirror(lb, Loc{Disk: best, Block: half + off})
	n.movedMir++
	return nil
}

// MovesBetween reports how many blocks have a different data home and
// how many a different image home in epoch b than in epoch a. The
// count is exact but costs O(overrides), not O(capacity).
func MovesBetween(a, b *Epoch) (data, images int64) {
	seen := func(m1, m2 map[int64]Loc, get1, get2 func(int64) Loc) int64 {
		counted := make(map[int64]bool, len(m1)+len(m2))
		var n int64
		for lb := range m1 {
			counted[lb] = true
			if get1(lb) != get2(lb) {
				n++
			}
		}
		for lb := range m2 {
			if counted[lb] {
				continue
			}
			if get1(lb) != get2(lb) {
				n++
			}
		}
		return n
	}
	data = seen(a.dataOver, b.dataOver, a.DataLoc, b.DataLoc)
	images = seen(a.mirOver, b.mirOver, a.MirrorLoc, b.MirrorLoc)
	return
}
