package layout

import (
	"testing"
	"testing/quick"
)

// TestOSMPaperFigure1 checks the 4-disk layout of the paper's Figure 1a:
// data blocks stripe RAID-0 style, and the images of blocks (B0,B1,B2)
// cluster contiguously on disk 3, (B3,B4,B5) on disk 2, (B6,B7,B8) on
// disk 1, (B9,B10,B11) on disk 0.
func TestOSMPaperFigure1(t *testing.T) {
	l := NewOSM(4, 1, 12) // 4 disks, 6 data + 6 mirror blocks each

	wantData := map[int64]Loc{
		0: {0, 0}, 1: {1, 0}, 2: {2, 0}, 3: {3, 0},
		4: {0, 1}, 5: {1, 1}, 6: {2, 1}, 7: {3, 1},
		8: {0, 2}, 9: {1, 2}, 10: {2, 2}, 11: {3, 2},
	}
	for b, want := range wantData {
		if got := l.DataLoc(b); got != want {
			t.Errorf("DataLoc(%d) = %v, want %v", b, got, want)
		}
	}

	wantMirrorDisk := map[int64]int{0: 3, 1: 2, 2: 1, 3: 0}
	for g, want := range wantMirrorDisk {
		if got := l.MirrorDisk(g); got != want {
			t.Errorf("MirrorDisk(%d) = %d, want %d", g, got, want)
		}
	}

	// Mirror group 0 = images of B0,B1,B2, contiguous on disk 3
	// starting at the mirror base (block 6).
	for j, b := range []int64{0, 1, 2} {
		want := Loc{Disk: 3, Block: 6 + int64(j)}
		if got := l.MirrorLoc(b); got != want {
			t.Errorf("MirrorLoc(%d) = %v, want %v", b, got, want)
		}
	}
}

// TestOSMPaperFigure3 checks the 4x3 array of the paper's Figure 3:
// 12 disks, disk Dj on node j mod 4; stripe group (B0..B3) on D0..D3,
// (B4..B7) on D4..D7, (B8..B11) on D8..D11, wrapping thereafter.
func TestOSMPaperFigure3(t *testing.T) {
	l := NewOSM(4, 3, 12)
	if l.TotalDisks() != 12 {
		t.Fatalf("TotalDisks = %d, want 12", l.TotalDisks())
	}
	for b := int64(0); b < 12; b++ {
		if got := l.DataLoc(b); got.Disk != int(b) || got.Block != 0 {
			t.Errorf("DataLoc(%d) = %v, want D%d:0", b, got, b)
		}
	}
	// Block 12 wraps to D0's second data block.
	if got := l.DataLoc(12); got != (Loc{0, 1}) {
		t.Errorf("DataLoc(12) = %v, want D0:1", got)
	}
	// Disk-to-node mapping: node i holds disks i, i+4, i+8.
	for node := 0; node < 4; node++ {
		for local := 0; local < 3; local++ {
			j := l.DiskAt(node, local)
			if j != node+local*4 {
				t.Errorf("DiskAt(%d,%d) = %d, want %d", node, local, j, node+local*4)
			}
			if l.NodeOfDisk(j) != node || l.LocalIndexOfDisk(j) != local {
				t.Errorf("inverse mapping broken for disk %d", j)
			}
		}
	}
	// Stripe groups span all 4 nodes.
	for s := int64(0); s < 6; s++ {
		nodes := map[int]bool{}
		for _, b := range l.StripeGroupBlocks(s) {
			nodes[l.NodeOfDisk(l.DataLoc(b).Disk)] = true
		}
		if len(nodes) != 4 {
			t.Errorf("stripe group %d touches %d nodes, want 4", s, len(nodes))
		}
	}
}

// osmCases is a spread of geometries used by the invariant tests.
func osmCases() []OSM {
	return []OSM{
		NewOSM(2, 1, 8),
		NewOSM(3, 1, 12),
		NewOSM(4, 1, 12),
		NewOSM(4, 3, 12),
		NewOSM(4, 2, 24),
		NewOSM(5, 2, 40),
		NewOSM(8, 1, 64),
		NewOSM(12, 1, 132),
		NewOSM(3, 4, 50), // odd-shaped: truncated capacity
		NewOSM(7, 3, 36),
	}
}

// TestOSMOrthogonality: a data block and its image never share a node
// (and therefore never a disk) — the defining OSM property.
func TestOSMOrthogonality(t *testing.T) {
	for _, l := range osmCases() {
		for b := int64(0); b < l.DataBlocks(); b++ {
			d := l.DataLoc(b)
			m := l.MirrorLoc(b)
			if l.NodeOfDisk(d.Disk) == l.NodeOfDisk(m.Disk) {
				t.Fatalf("OSM(%d,%d,%d): block %d data on node %d, image on same node (disks %d,%d)",
					l.Nodes, l.DisksPerNode, l.DiskBlocks, b, l.NodeOfDisk(d.Disk), d.Disk, m.Disk)
			}
		}
	}
}

// TestOSMStripeGroupImagesOnTwoDisks: the images of one stripe group of
// n blocks occupy exactly two disks (paper Section 2), for n >= 3.
func TestOSMStripeGroupImagesOnTwoDisks(t *testing.T) {
	for _, l := range osmCases() {
		if l.Nodes < 3 {
			continue
		}
		groups := l.DataBlocks() / int64(l.Nodes)
		for s := int64(0); s < groups; s++ {
			disks := map[int]bool{}
			for _, b := range l.StripeGroupBlocks(s) {
				disks[l.MirrorLoc(b).Disk] = true
			}
			if len(disks) != 2 {
				t.Fatalf("OSM(%d,%d,%d): stripe group %d images on %d disks, want 2",
					l.Nodes, l.DisksPerNode, l.DiskBlocks, s, len(disks))
			}
		}
	}
}

// TestOSMMirrorGroupContiguous: a mirror group occupies GroupSize
// consecutive blocks on one disk — the "one long write" property.
func TestOSMMirrorGroupContiguous(t *testing.T) {
	for _, l := range osmCases() {
		groups := l.DataBlocks() / int64(l.GroupSize())
		for g := int64(0); g < groups; g++ {
			start := l.GroupLoc(g)
			for j, b := range l.GroupBlocks(g) {
				want := Loc{Disk: start.Disk, Block: start.Block + int64(j)}
				if got := l.MirrorLoc(b); got != want {
					t.Fatalf("OSM(%d,%d,%d): MirrorLoc(%d) = %v, want %v",
						l.Nodes, l.DisksPerNode, l.DiskBlocks, b, got, want)
				}
			}
		}
	}
}

// TestOSMMapsAreInjectiveAndInBounds: no two logical blocks collide in
// either the data or mirror areas, data stays in the lower half, images
// in the upper half, and everything is within disk capacity.
func TestOSMMapsAreInjectiveAndInBounds(t *testing.T) {
	for _, l := range osmCases() {
		seenData := map[Loc]int64{}
		seenMirror := map[Loc]int64{}
		half := l.DiskBlocks / 2
		for b := int64(0); b < l.DataBlocks(); b++ {
			d := l.DataLoc(b)
			m := l.MirrorLoc(b)
			if d.Disk < 0 || d.Disk >= l.TotalDisks() || d.Block < 0 || d.Block >= half {
				t.Fatalf("OSM(%d,%d,%d): DataLoc(%d) = %v outside data half", l.Nodes, l.DisksPerNode, l.DiskBlocks, b, d)
			}
			if m.Disk < 0 || m.Disk >= l.TotalDisks() || m.Block < half || m.Block >= l.DiskBlocks {
				t.Fatalf("OSM(%d,%d,%d): MirrorLoc(%d) = %v outside mirror half", l.Nodes, l.DisksPerNode, l.DiskBlocks, b, m)
			}
			if prev, dup := seenData[d]; dup {
				t.Fatalf("data collision: blocks %d and %d both at %v", prev, b, d)
			}
			if prev, dup := seenMirror[m]; dup {
				t.Fatalf("mirror collision: blocks %d and %d both at %v", prev, b, m)
			}
			seenData[d] = b
			seenMirror[m] = b
		}
	}
}

// TestOSMMirrorLoadBalance: every disk receives the same number of
// mirror groups (perfect packing).
func TestOSMMirrorLoadBalance(t *testing.T) {
	for _, l := range osmCases() {
		groups := l.DataBlocks() / int64(l.GroupSize())
		perDisk := map[int]int64{}
		for g := int64(0); g < groups; g++ {
			perDisk[l.MirrorDisk(g)]++
		}
		want := l.GroupSlotsPerDisk()
		for j := 0; j < l.TotalDisks(); j++ {
			if perDisk[j] != want {
				t.Fatalf("OSM(%d,%d,%d): disk %d holds %d groups, want %d",
					l.Nodes, l.DisksPerNode, l.DiskBlocks, j, perDisk[j], want)
			}
		}
	}
}

// TestOSMQuickOrthogonality is a property-based sweep over random
// geometries and blocks.
func TestOSMQuickOrthogonality(t *testing.T) {
	f := func(nodes, k uint8, rawBlocks uint16, block uint32) bool {
		n := int(nodes%11) + 2                       // 2..12
		kk := int(k%4) + 1                           // 1..4
		per := int64(rawBlocks%512) + int64(2*(n-1)) // big enough for one group
		if per%2 != 0 {
			per++
		}
		l := NewOSM(n, kk, per)
		if l.DataBlocks() == 0 {
			return true
		}
		b := int64(block) % l.DataBlocks()
		d, m := l.DataLoc(b), l.MirrorLoc(b)
		return l.NodeOfDisk(d.Disk) != l.NodeOfDisk(m.Disk) &&
			d.Block < per/2 && m.Block >= per/2 && m.Block < per
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOSMPanicsOnBadGeometry(t *testing.T) {
	cases := []func(){
		func() { NewOSM(1, 1, 8) }, // too few nodes
		func() { NewOSM(4, 0, 8) }, // no disks
		func() { NewOSM(4, 1, 7) }, // odd capacity
		func() { NewOSM(4, 1, 4) }, // mirror half smaller than a group
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
