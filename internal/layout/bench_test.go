package layout

import "testing"

func BenchmarkOSMDataLoc(b *testing.B) {
	l := NewOSM(12, 1, 2048)
	n := l.DataBlocks()
	var sink Loc
	for i := 0; i < b.N; i++ {
		sink = l.DataLoc(int64(i) % n)
	}
	_ = sink
}

func BenchmarkOSMMirrorLoc(b *testing.B) {
	l := NewOSM(12, 1, 2048)
	n := l.DataBlocks()
	var sink Loc
	for i := 0; i < b.N; i++ {
		sink = l.MirrorLoc(int64(i) % n)
	}
	_ = sink
}

func BenchmarkRAID5DataLoc(b *testing.B) {
	l := NewRAID5(Geometry{Disks: 12, DiskBlocks: 2048})
	n := l.DataBlocks()
	var sink Loc
	for i := 0; i < b.N; i++ {
		sink = l.DataLoc(int64(i) % n)
	}
	_ = sink
}
