package layout

import (
	"errors"
	"testing"
)

// epochCheck verifies the full placement invariants of one epoch by
// exhaustive scan: bijective data placement, bijective image placement,
// orthogonality, contiguous per-disk data prefixes, and that the
// inverse lookups really invert the forward maps.
func epochCheck(t *testing.T, e *Epoch) {
	t.Helper()
	b := e.DataBlocks()
	half := e.Base().DiskBlocks / 2
	dataSeen := make(map[Loc]int64, b)
	mirSeen := make(map[Loc]int64, b)
	counts := make([]int64, e.Width())
	for lb := int64(0); lb < b; lb++ {
		dl, ml := e.DataLoc(lb), e.MirrorLoc(lb)
		if !e.Active(dl.Disk) || !e.Active(ml.Disk) {
			t.Fatalf("block %d placed on retired disk: data %v image %v", lb, dl, ml)
		}
		if dl.Block < 0 || dl.Block >= half {
			t.Fatalf("block %d data offset %v outside data half", lb, dl)
		}
		if ml.Block < half || ml.Block >= e.Base().DiskBlocks {
			t.Fatalf("block %d image offset %v outside mirror half", lb, ml)
		}
		if e.NodeOf(dl.Disk) == e.NodeOf(ml.Disk) {
			t.Fatalf("block %d not orthogonal: data %v image %v share node %d", lb, dl, ml, e.NodeOf(dl.Disk))
		}
		if prev, dup := dataSeen[dl]; dup {
			t.Fatalf("blocks %d and %d share data loc %v", prev, lb, dl)
		}
		if prev, dup := mirSeen[ml]; dup {
			t.Fatalf("blocks %d and %d share image loc %v", prev, lb, ml)
		}
		dataSeen[dl] = lb
		mirSeen[ml] = lb
		counts[dl.Disk]++
		if got, ok := e.DataSource(dl.Disk, dl.Block); !ok || got != lb {
			t.Fatalf("DataSource(%v) = %d,%v; want %d", dl, got, ok, lb)
		}
		if got, ok := e.MirrorSource(ml.Disk, ml.Block); !ok || got != lb {
			t.Fatalf("MirrorSource(%v) = %d,%v; want %d", ml, got, ok, lb)
		}
	}
	// Contiguous prefix: every offset below the count is occupied.
	for d := 0; d < e.Width(); d++ {
		if counts[d] != e.DataCounts()[d] {
			t.Fatalf("disk %d: counted %d data blocks, epoch says %d", d, counts[d], e.DataCounts()[d])
		}
		for off := int64(0); off < counts[d]; off++ {
			if _, ok := dataSeen[Loc{Disk: d, Block: off}]; !ok {
				t.Fatalf("disk %d: hole at data offset %d below count %d", d, off, counts[d])
			}
		}
	}
}

// balanceCheck asserts the active disks are within ±1 data block of
// each other and together hold exactly the full capacity.
func balanceCheck(t *testing.T, e *Epoch) {
	t.Helper()
	counts := e.DataCounts()
	minC, maxC := int64(1<<62), int64(-1)
	var sum int64
	for d, c := range counts {
		if !e.Active(d) {
			if c != 0 {
				t.Fatalf("retired disk %d still holds %d blocks", d, c)
			}
			continue
		}
		sum += c
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if sum != e.DataBlocks() {
		t.Fatalf("active disks hold %d blocks, capacity %d", sum, e.DataBlocks())
	}
	if maxC-minC > 1 {
		t.Fatalf("imbalance: per-disk counts span [%d,%d]", minC, maxC)
	}
}

// TestEpochRemapProperties is the exhaustive geometry sweep: for every
// disk-count pair N→M with 2 ≤ N < M ≤ 64, the grow remap must be
// (a) balanced within ±1 block per disk, (b) move no block whose old
// and new homes coincide, and (c) move no more than the theoretical
// minimum plus slack (one block per destination disk, the cost of the
// remainder assignment).
func TestEpochRemapProperties(t *testing.T) {
	for n := 2; n < 64; n++ {
		base := NewEpoch(NewOSM(n, 1, 8*int64(n-1)))
		b := base.DataBlocks()
		for m := n + 1; m <= 64; m++ {
			next, err := base.Grow(m - n)
			if err != nil {
				t.Fatalf("grow %d→%d: %v", n, m, err)
			}
			balanceCheck(t, next)

			// (b) no self-moves: every override is a real move.
			for lb, to := range next.dataOver {
				if from := base.DataLoc(lb); from == to {
					t.Fatalf("%d→%d: block %d 'moved' to its own home %v", n, m, lb, to)
				}
			}
			if len(next.dataOver) != len(next.dataRev) {
				t.Fatalf("%d→%d: override/inverse size mismatch %d vs %d", n, m, len(next.dataOver), len(next.dataRev))
			}

			// (c) minimal movement. Old disks each hold B/n; no disk
			// may keep more than ceil(B/m), so at least
			// sum(B/n - ceil(B/m)) blocks must leave. Slack: the ±1
			// remainder assignment costs at most one block per disk.
			ceil := (b + int64(m) - 1) / int64(m)
			var minMoves int64
			for d := 0; d < n; d++ {
				if surplus := b/int64(n) - ceil; surplus > 0 {
					minMoves += surplus
				}
			}
			moved, images := next.MovedByLastStep()
			if moved > minMoves+int64(m) {
				t.Fatalf("%d→%d: moved %d blocks, minimum %d + slack %d", n, m, moved, minMoves, m)
			}
			if images != 0 {
				t.Fatalf("%d→%d: grow moved %d images; grow must move only data", n, m, images)
			}
			// And movement really restored balance: nothing above ceil.
			for d, c := range next.DataCounts() {
				if c > ceil {
					t.Fatalf("%d→%d: disk %d holds %d > ceil %d", n, m, d, c, ceil)
				}
			}
		}
	}
}

// TestEpochGrowExhaustive runs the full per-block invariant scan on a
// representative set of grows, including multi-disk nodes and chained
// steps.
func TestEpochGrowExhaustive(t *testing.T) {
	cases := []struct {
		nodes, k, add int
		diskBlocks    int64
	}{
		{2, 1, 1, 8},
		{4, 1, 8, 24},
		{4, 2, 2, 24},
		{3, 3, 5, 16},
		{8, 1, 3, 56},
	}
	for _, c := range cases {
		e0 := NewEpoch(NewOSM(c.nodes, c.k, c.diskBlocks))
		epochCheck(t, e0)
		e1, err := e0.Grow(c.add)
		if err != nil {
			t.Fatalf("grow %+v: %v", c, err)
		}
		epochCheck(t, e1)
		balanceCheck(t, e1)
		if e1.Gen() != 1 || e0.Gen() != 0 {
			t.Fatalf("gen: got %d after grow of %d", e1.Gen(), e0.Gen())
		}
		// Chained second step.
		e2, err := e1.Grow(1)
		if err != nil {
			t.Fatalf("second grow %+v: %v", c, err)
		}
		epochCheck(t, e2)
		balanceCheck(t, e2)
	}
}

// TestEpochShrink grows an array then shrinks it, checking the full
// invariants at each generation — including that images stranded on
// retired disks relocate and orthogonality holds throughout.
func TestEpochShrink(t *testing.T) {
	e0 := NewEpoch(NewOSM(4, 1, 24))
	e1, err := e0.Grow(4) // 4 → 8 nodes
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e1.Shrink(2) // 8 → 6 nodes
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	epochCheck(t, e2)
	balanceCheck(t, e2)
	if e2.Nodes() != 6 || e2.Width() != 8 {
		t.Fatalf("nodes=%d width=%d after shrink; want 6, 8", e2.Nodes(), e2.Width())
	}
	if e2.Active(7) || e2.Active(6) {
		t.Fatal("retired disks still active after shrink")
	}
	// Another step down still has mirror headroom on the surviving
	// grown nodes.
	e3, err := e2.Shrink(1) // 6 → 5
	if err != nil {
		t.Fatalf("second shrink: %v", err)
	}
	epochCheck(t, e3)
	balanceCheck(t, e3)
	// Shrinking all the way back to the base node count is an
	// exact-fit packing with orthogonality constraints; a base array
	// has zero slack, so the allocator may refuse. What matters is
	// that the refusal is typed and the epoch chain is untouched —
	// callers keep a node of headroom or free capacity first.
	if e4, err := e3.Shrink(1); err != nil {
		if !errors.Is(err, ErrNoMirrorSpace) && !errors.Is(err, ErrDataOverflow) {
			t.Fatalf("boundary shrink failed with untyped error: %v", err)
		}
	} else {
		epochCheck(t, e4)
		balanceCheck(t, e4)
	}
}

// TestEpochShrinkRefusals pins the typed errors: a base array with a
// full mirror half cannot shrink (no room for the survivors' extra
// data), and the error says which constraint broke.
func TestEpochShrinkRefusals(t *testing.T) {
	e0 := NewEpoch(NewOSM(4, 1, 24))
	if _, err := e0.Shrink(1); !errors.Is(err, ErrDataOverflow) {
		t.Fatalf("shrink of full base array: err = %v, want ErrDataOverflow", err)
	}
	if _, err := e0.Shrink(3); err == nil {
		t.Fatal("shrink below 2 nodes must fail")
	}
	if _, err := e0.Grow(0); err == nil {
		t.Fatal("grow by 0 must fail")
	}
}

// TestEpochDescRoundTrip replays a descriptor and checks the rebuilt
// epoch places every block identically — the property that lets peers
// exchange step lists instead of override maps.
func TestEpochDescRoundTrip(t *testing.T) {
	e0 := NewEpoch(NewOSM(4, 2, 24))
	e1, err := e0.Grow(3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e1.Shrink(2)
	if err != nil {
		t.Fatal(err)
	}
	desc := e2.Desc()
	if desc.Gen() != 2 {
		t.Fatalf("desc gen %d, want 2", desc.Gen())
	}
	re, err := EpochFromDesc(desc)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if re.Gen() != e2.Gen() || re.Width() != e2.Width() || re.Nodes() != e2.Nodes() {
		t.Fatalf("replayed shape differs: gen %d/%d width %d/%d", re.Gen(), e2.Gen(), re.Width(), e2.Width())
	}
	for lb := int64(0); lb < e2.DataBlocks(); lb++ {
		if e2.DataLoc(lb) != re.DataLoc(lb) || e2.MirrorLoc(lb) != re.MirrorLoc(lb) {
			t.Fatalf("block %d: replayed placement differs", lb)
		}
	}
}

// TestEpochMovesBetween checks the move accounting used by migration
// progress reporting.
func TestEpochMovesBetween(t *testing.T) {
	e0 := NewEpoch(NewOSM(4, 1, 24))
	e1, err := e0.Grow(8) // 4 → 12
	if err != nil {
		t.Fatal(err)
	}
	data, images := MovesBetween(e0, e1)
	wantData, wantImages := e1.MovedByLastStep()
	if data != wantData || images != wantImages {
		t.Fatalf("MovesBetween = %d,%d; step says %d,%d", data, images, wantData, wantImages)
	}
	// 4→12 with equal initial load moves 2/3 of the data: the k/(N+k)
	// fraction the paper's reconfiguration argument predicts.
	b := e0.DataBlocks()
	if lo, hi := 2*b/3-12, 2*b/3+12; data < lo || data > hi {
		t.Fatalf("4→12 moved %d of %d blocks; want ≈ 2/3", data, b)
	}
}

// TestEpochTrivialFastPath pins the gen-0 guarantees engines rely on
// for their allocation-free paths.
func TestEpochTrivialFastPath(t *testing.T) {
	e := NewEpoch(NewOSM(4, 2, 24))
	if !e.Trivial() {
		t.Fatal("fresh epoch not trivial")
	}
	osm := e.Base()
	for lb := int64(0); lb < e.DataBlocks(); lb++ {
		if e.DataLoc(lb) != osm.DataLoc(lb) || e.MirrorLoc(lb) != osm.MirrorLoc(lb) {
			t.Fatalf("trivial epoch disagrees with OSM at block %d", lb)
		}
	}
	e1, err := e.Grow(1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Trivial() {
		t.Fatal("grown epoch claims trivial")
	}
	if e.Trivial() != true {
		t.Fatal("grow mutated its receiver")
	}
}
