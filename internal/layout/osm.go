package layout

import "fmt"

// OSM is the paper's orthogonal striping and mirroring layout over an
// n-by-k array: n nodes, each with k disks, n·k disks total. Global disk
// j sits on node j mod n (so disk(node m, local l) = m + l·n, the
// arrangement of the paper's Figure 3).
//
// Data placement is RAID-0 style across all n·k disks: block b lives in
// the data half of disk b mod n·k. A *stripe group* is n consecutive
// blocks — one per node — accessed in parallel; consecutive stripe
// groups fall on different local disks of the same nodes and pipeline
// over the node's SCSI bus.
//
// Mirror placement is the OSM rule: *mirror group* g consists of the
// images of the n-1 consecutive blocks g(n-1) … g(n-1)+n-2. Those
// blocks occupy n-1 distinct nodes, leaving exactly one node that holds
// none of them; the whole group is written as one contiguous run in the
// mirror half of one of that node's disks (rotating over the node's k
// disks). Consequences, all property-tested:
//
//   - orthogonality: a block and its image never share a node (hence
//     never a disk);
//   - the images of one stripe group of n blocks occupy exactly two
//     disks;
//   - a mirror group is one contiguous physical run — a single long
//     write;
//   - capacity is exactly half the raw array, like RAID-10.
type OSM struct {
	// Nodes is n, the striping width (degree of parallelism).
	Nodes int
	// DisksPerNode is k, the pipelining depth.
	DisksPerNode int
	// DiskBlocks is the raw capacity of each disk in blocks (must be
	// even: half data, half mirror).
	DiskBlocks int64
}

// NewOSM creates an OSM layout for an n-by-k array.
func NewOSM(nodes, disksPerNode int, diskBlocks int64) OSM {
	if nodes < 2 {
		panic(fmt.Sprintf("layout: OSM needs >= 2 nodes, got %d", nodes))
	}
	if disksPerNode < 1 {
		panic(fmt.Sprintf("layout: OSM needs >= 1 disk per node, got %d", disksPerNode))
	}
	if diskBlocks < 2 || diskBlocks%2 != 0 {
		panic(fmt.Sprintf("layout: OSM disk capacity must be positive and even, got %d", diskBlocks))
	}
	if diskBlocks/2 < int64(nodes-1) {
		panic(fmt.Sprintf("layout: OSM mirror half (%d blocks) smaller than one mirror group (%d)", diskBlocks/2, nodes-1))
	}
	return OSM{Nodes: nodes, DisksPerNode: disksPerNode, DiskBlocks: diskBlocks}
}

// TotalDisks reports n·k.
func (l OSM) TotalDisks() int { return l.Nodes * l.DisksPerNode }

// GroupSize reports the mirror group size, n-1.
func (l OSM) GroupSize() int { return l.Nodes - 1 }

// StripeWidth reports the stripe group size, n.
func (l OSM) StripeWidth() int { return l.Nodes }

// mirrorBase is the first block of each disk's mirror half.
func (l OSM) mirrorBase() int64 { return l.DiskBlocks / 2 }

// GroupSlotsPerDisk reports how many whole mirror groups fit in one
// disk's mirror half. Usable capacity is truncated to whole group
// slots so that mirror groups pack perfectly: each disk receives
// exactly one group out of every n·k consecutive groups, and the mirror
// half never overflows.
func (l OSM) GroupSlotsPerDisk() int64 { return (l.DiskBlocks / 2) / int64(l.GroupSize()) }

// DataBlocks implements Striper: slightly less than half the raw
// capacity (truncated to whole mirror-group slots per disk).
func (l OSM) DataBlocks() int64 {
	return l.GroupSlotsPerDisk() * int64(l.GroupSize()) * int64(l.TotalDisks())
}

// NodeOfDisk reports which node global disk j is attached to.
func (l OSM) NodeOfDisk(j int) int { return j % l.Nodes }

// LocalIndexOfDisk reports disk j's index among its node's k disks.
func (l OSM) LocalIndexOfDisk(j int) int { return j / l.Nodes }

// DiskAt reports the global index of local disk l on node m.
func (l OSM) DiskAt(node, local int) int { return node + local*l.Nodes }

// DataLoc implements Striper.
func (l OSM) DataLoc(b int64) Loc {
	n := int64(l.TotalDisks())
	return Loc{Disk: int(b % n), Block: b / n}
}

// MirrorGroupOf reports the mirror group of logical block b and its
// index within the group.
func (l OSM) MirrorGroupOf(b int64) (g int64, j int) {
	gs := int64(l.GroupSize())
	return b / gs, int(b % gs)
}

// GroupBlocks returns the logical blocks of mirror group g in order.
func (l OSM) GroupBlocks(g int64) []int64 {
	gs := int64(l.GroupSize())
	out := make([]int64, gs)
	for j := range out {
		out[j] = g*gs + int64(j)
	}
	return out
}

// MirrorNode reports which node stores the images of mirror group g:
// the unique node holding none of the group's data blocks.
func (l OSM) MirrorNode(g int64) int {
	n := int64(l.Nodes)
	gs := int64(l.GroupSize())
	return int(((g + 1) * gs) % n)
}

// MirrorDisk reports which global disk stores mirror group g. The
// node's k disks take turns, so consecutive groups destined for the
// same node pipeline over its disks.
func (l OSM) MirrorDisk(g int64) int {
	node := l.MirrorNode(g)
	local := int((g / int64(l.Nodes)) % int64(l.DisksPerNode))
	return l.DiskAt(node, local)
}

// GroupLoc reports where mirror group g begins: the group occupies
// GroupSize consecutive blocks starting at the returned location.
// Each disk receives exactly one group out of every n·k consecutive
// groups, so groups pack densely: group g is the (g / n·k)-th group on
// its disk.
func (l OSM) GroupLoc(g int64) Loc {
	slot := g / int64(l.TotalDisks())
	return Loc{Disk: l.MirrorDisk(g), Block: l.mirrorBase() + slot*int64(l.GroupSize())}
}

// MirrorLoc implements Mirrorer.
func (l OSM) MirrorLoc(b int64) Loc {
	g, j := l.MirrorGroupOf(b)
	start := l.GroupLoc(g)
	return Loc{Disk: start.Disk, Block: start.Block + int64(j)}
}

// StripeGroupOf reports the stripe group (set of n blocks accessed in
// parallel, one per node) containing block b.
func (l OSM) StripeGroupOf(b int64) int64 { return b / int64(l.Nodes) }

// StripeGroupBlocks returns the logical blocks of stripe group s.
func (l OSM) StripeGroupBlocks(s int64) []int64 {
	n := int64(l.Nodes)
	out := make([]int64, n)
	for j := range out {
		out[j] = s*n + int64(j)
	}
	return out
}
