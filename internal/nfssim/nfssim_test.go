package nfssim

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/netmodel"
	"repro/internal/vclock"
)

func flatParams() cluster.Params {
	return cluster.Params{
		Nodes:         4,
		DisksPerNode:  1,
		BlockSize:     1024,
		DiskBlocks:    64,
		Disk:          disk.Model{Seek: 0, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0},
		Net:           netmodel.Params{LinkBps: 1e6, Latency: 0, PerMessage: 0},
		CPUPerRequest: 0,
		ReqMsgBytes:   0,
	}
}

func TestServerValidation(t *testing.T) {
	c := cluster.New(flatParams())
	if _, err := NewServer(c, 99); err == nil {
		t.Fatal("out-of-range server node accepted")
	}
}

func TestRoundTripThroughServer(t *testing.T) {
	c := cluster.New(flatParams())
	srv, err := NewServer(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	arr := srv.ClientArray(2)
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{3}, 2048)
		if err := arr.WriteBlocks(ctx, 1, data); err != nil {
			t.Error(err)
		}
		got := make([]byte, 2048)
		if err := arr.ReadBlocks(ctx, 1, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("NFS round trip mismatch")
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestServerPortSerializesClients is the defining NFS behaviour: two
// remote clients reading concurrently are serialized by the server's
// transmit port, so aggregate bandwidth does not scale.
func TestServerPortSerializesClients(t *testing.T) {
	c := cluster.New(flatParams())
	srv, err := NewServer(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prefill without timing.
	if err := srv.ClientArray(0).WriteBlocks(context.Background(), 0, make([]byte, 16*1024)); err != nil {
		t.Fatal(err)
	}
	ends := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		arr := srv.ClientArray(i + 1)
		c.Sim.Spawn("client", func(p *vclock.Proc) {
			ctx := vclock.With(context.Background(), p)
			buf := make([]byte, 8*1024)
			if err := arr.ReadBlocks(ctx, int64(i*8), buf); err != nil {
				t.Error(err)
			}
			ends[i] = p.Now()
		})
	}
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Each response is 8 KB = 8.192 ms on the server TX port; the disk
	// reads (8.192 ms each) serialize too. The second client cannot
	// finish before ~2x the first client's time.
	if ends[1] < ends[0]+8*time.Millisecond && ends[0] < ends[1]+8*time.Millisecond {
		t.Errorf("clients finished together (%v, %v); server must serialize them", ends[0], ends[1])
	}
}

func TestLocalClientSkipsNetwork(t *testing.T) {
	c := cluster.New(flatParams())
	srv, err := NewServer(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	local := srv.ClientArray(0)
	remote := srv.ClientArray(1)
	var localT, remoteT time.Duration
	c.Sim.Spawn("client", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		buf := make([]byte, 1024)
		t0 := p.Now()
		if err := local.ReadBlocks(ctx, 0, buf); err != nil {
			t.Error(err)
		}
		localT = p.Now() - t0
		t0 = p.Now()
		if err := remote.ReadBlocks(ctx, 0, buf); err != nil {
			t.Error(err)
		}
		remoteT = p.Now() - t0
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if localT >= remoteT {
		t.Errorf("local NFS access (%v) not cheaper than remote (%v)", localT, remoteT)
	}
}

func TestClientArrayMetadata(t *testing.T) {
	c := cluster.New(flatParams())
	srv, err := NewServer(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Node() != 1 {
		t.Fatalf("node = %d", srv.Node())
	}
	arr := srv.ClientArray(0)
	if arr.Name() != "nfs" {
		t.Fatalf("name = %q", arr.Name())
	}
	if arr.BlockSize() != 1024 || arr.Blocks() != 64 {
		t.Fatalf("geometry %d x %d", arr.BlockSize(), arr.Blocks())
	}
	if err := arr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWritesVisibleAcrossClients: two clients of the same server see
// one store.
func TestWritesVisibleAcrossClients(t *testing.T) {
	c := cluster.New(flatParams())
	srv, err := NewServer(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.ClientArray(1)
	b := srv.ClientArray(2)
	c.Sim.Spawn("pair", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		data := bytes.Repeat([]byte{0x5A}, 1024)
		if err := a.WriteBlocks(ctx, 7, data); err != nil {
			t.Error(err)
		}
		got := make([]byte, 1024)
		if err := b.ReadBlocks(ctx, 7, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("clients see different data")
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}
