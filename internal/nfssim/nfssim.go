// Package nfssim is the centralized-server baseline of the paper's
// experiments: an NFS-like configuration in which every client's I/O
// funnels through one server node over the network, and only the
// server's local disks store data. Its defining behaviour — aggregate
// bandwidth capped by the server's single switch port and CPU — is what
// the serverless RAID architectures are measured against in Figure 5
// and the Andrew benchmark.
package nfssim

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/raid"
	"repro/internal/vclock"
)

// Server is the central file server: a RAID-0 set over its own local
// disks. (With one disk per node this is just the node's disk, like a
// typical departmental NFS server of the era.)
type Server struct {
	c    *cluster.Cluster
	node int
	arr  raid.Array
}

// NewServer creates the NFS server on the given node.
func NewServer(c *cluster.Cluster, node int) (*Server, error) {
	if node < 0 || node >= c.Params.Nodes {
		return nil, fmt.Errorf("nfssim: node %d out of range", node)
	}
	arr, err := raid.NewRAID0(c.LocalDevs(node))
	if err != nil {
		return nil, err
	}
	return &Server{c: c, node: node, arr: arr}, nil
}

// Node reports the server's node ID.
func (s *Server) Node() int { return s.node }

// ClientArray returns the server's storage as seen from clientNode:
// every request crosses the network to the server, runs on the server's
// CPU and disks, and returns. Implements raid.Array.
func (s *Server) ClientArray(clientNode int) raid.Array {
	return &clientArray{s: s, client: clientNode}
}

type clientArray struct {
	s      *Server
	client int
}

var _ raid.Array = (*clientArray)(nil)

func (a *clientArray) Name() string   { return "nfs" }
func (a *clientArray) BlockSize() int { return a.s.arr.BlockSize() }
func (a *clientArray) Blocks() int64  { return a.s.arr.Blocks() }

func (a *clientArray) serverCPU(ctx context.Context) {
	if p, ok := vclock.From(ctx); ok {
		a.s.c.Nodes[a.s.node].CPU.Use(p, a.s.c.Params.CPUPerRequest)
	}
}

func (a *clientArray) remote() bool { return a.client != a.s.node }

// ReadBlocks: request to the server, server-side disk read, data
// response over the server's TX port.
func (a *clientArray) ReadBlocks(ctx context.Context, b int64, p []byte) error {
	if a.remote() {
		if err := a.s.c.Net.Send(ctx, a.client, a.s.node, a.s.c.Params.ReqMsgBytes); err != nil {
			return err
		}
	}
	a.serverCPU(ctx)
	if err := a.s.arr.ReadBlocks(ctx, b, p); err != nil {
		return err
	}
	if a.remote() {
		if err := a.s.c.Net.Send(ctx, a.s.node, a.client, len(p)); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks: data to the server, server-side disk write, ack.
func (a *clientArray) WriteBlocks(ctx context.Context, b int64, p []byte) error {
	if a.remote() {
		if err := a.s.c.Net.Send(ctx, a.client, a.s.node, len(p)); err != nil {
			return err
		}
	}
	a.serverCPU(ctx)
	if err := a.s.arr.WriteBlocks(ctx, b, p); err != nil {
		return err
	}
	if a.remote() {
		if err := a.s.c.Net.Send(ctx, a.s.node, a.client, a.s.c.Params.ReqMsgBytes); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the server array.
func (a *clientArray) Flush(ctx context.Context) error {
	return a.s.arr.Flush(ctx)
}
