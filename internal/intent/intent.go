// Package intent implements a write-intent log: a per-device,
// region-granular dirty bitmap recording which physical block regions of
// an array member may be stale because a write could not reach it.
//
// The RAID-x engine marks regions dirty on the write path whenever a
// copy location is skipped (its device is suspect or failed) or a copy
// write errors out. When the device comes back — a node readmitted
// after a partition, a restart, a transient stall — the repair layer
// replays only the dirty regions from the surviving copies instead of
// recopying the whole disk. Dirty-region tracking is the difference
// between paying seconds for a two-second network blip and paying a
// whole-disk rebuild for it (cf. Thomasian's mirrored-array survey,
// arXiv:1801.08873).
//
// Granularity is a trade-off set by the region size: coarse regions keep
// the bitmap tiny and coalesce adjacent writes, at the cost of replaying
// a few clean blocks around each dirty one. The log is safe to
// over-mark — replaying a clean region is idempotent — so every error
// path marks conservatively.
//
// The log serializes to a compact binary snapshot (MarshalBinary) that
// the repair supervisor persists through the CDD managers, and merges
// snapshots by union (Merge), so a repair host that crashes and restarts
// recovers its dirty map from any surviving node.
//
// All methods are safe on a nil *Log (they discard marks and report
// nothing dirty), following the internal/obs nil-safety idiom: the
// engine can be built without intent logging and every hook is a no-op.
package intent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"sync"

	"repro/internal/store"
)

// DefaultRegionBlocks is the default dirty-tracking granularity: one bit
// per 64 physical blocks (2 MiB at the common 32 KiB block size).
const DefaultRegionBlocks = 64

// Region is a contiguous run of physical blocks on one device,
// region-aligned except possibly at the device end.
type Region struct {
	Start int64 `json:"start"`
	Count int64 `json:"count"`
}

// Log is the write-intent log of one array: a dirty bitset per member
// device over fixed-size physical-block regions.
type Log struct {
	mu           sync.Mutex
	regionBlocks int64
	deviceBlocks int64
	bits         [][]uint64 // one bitset per device
	dirty        []int64    // dirty-region count per device (cheap gauges)
	gen          uint64     // bumped on every mutation (persistence dirtiness)
}

// NewLog creates a log for an array of devices, each deviceBlocks
// physical blocks, tracked at regionBlocks granularity (0 takes
// DefaultRegionBlocks).
func NewLog(devices int, deviceBlocks, regionBlocks int64) *Log {
	if regionBlocks <= 0 {
		regionBlocks = DefaultRegionBlocks
	}
	if devices < 0 || deviceBlocks < 0 {
		panic(fmt.Sprintf("intent: bad geometry %d x %d", devices, deviceBlocks))
	}
	regions := (deviceBlocks + regionBlocks - 1) / regionBlocks
	words := (regions + 63) / 64
	l := &Log{
		regionBlocks: regionBlocks,
		deviceBlocks: deviceBlocks,
		bits:         make([][]uint64, devices),
		dirty:        make([]int64, devices),
	}
	for i := range l.bits {
		l.bits[i] = make([]uint64, words)
	}
	return l
}

// Grow extends the log to track devices members, preserving existing
// bitsets: new devices start clean. Indices are stable — an online grow
// appends devices, never renumbers them. Shrinking is not supported
// (retired members keep their slot; their bits simply stay clean), and
// a nil log stays nil-safe.
func (l *Log) Grow(devices int) {
	if l == nil || devices <= len(l.bits) {
		return
	}
	words := (l.regions() + 63) / 64
	l.mu.Lock()
	for len(l.bits) < devices {
		l.bits = append(l.bits, make([]uint64, words))
		l.dirty = append(l.dirty, 0)
	}
	l.gen++
	l.mu.Unlock()
}

// RegionBlocks reports the tracking granularity in blocks.
func (l *Log) RegionBlocks() int64 {
	if l == nil {
		return 0
	}
	return l.regionBlocks
}

// Devices reports how many devices the log tracks.
func (l *Log) Devices() int {
	if l == nil {
		return 0
	}
	return len(l.bits)
}

// regions reports the number of regions per device. Caller holds no lock
// (immutable after construction).
func (l *Log) regions() int64 {
	return (l.deviceBlocks + l.regionBlocks - 1) / l.regionBlocks
}

// MarkRange marks the regions covering physical blocks [block,
// block+count) on device dev as dirty. Out-of-range portions are
// clamped; a nil log discards the mark.
func (l *Log) MarkRange(dev int, block, count int64) {
	if l == nil || dev < 0 || dev >= len(l.bits) || count <= 0 {
		return
	}
	lo, hi := block, block+count
	if lo < 0 {
		lo = 0
	}
	if hi > l.deviceBlocks {
		hi = l.deviceBlocks
	}
	if lo >= hi {
		return
	}
	first, last := lo/l.regionBlocks, (hi-1)/l.regionBlocks
	l.mu.Lock()
	bits := l.bits[dev]
	for r := first; r <= last; r++ {
		w, b := r/64, uint(r%64)
		if bits[w]&(1<<b) == 0 {
			bits[w] |= 1 << b
			l.dirty[dev]++
		}
	}
	l.gen++
	l.mu.Unlock()
}

// DirtyRegions reports how many regions are currently dirty on dev.
func (l *Log) DirtyRegions(dev int) int64 {
	if l == nil || dev < 0 || dev >= len(l.bits) {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirty[dev]
}

// DirtyBlocks reports the total blocks covered by dev's dirty regions
// (an upper bound on what a resync will move).
func (l *Log) DirtyBlocks(dev int) int64 {
	if l == nil {
		return 0
	}
	var n int64
	for _, r := range l.Dirty(dev) {
		n += r.Count
	}
	return n
}

// Dirty returns dev's dirty regions, coalesced into maximal contiguous
// runs, without clearing them.
func (l *Log) Dirty(dev int) []Region {
	if l == nil || dev < 0 || dev >= len(l.bits) {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.collect(dev)
}

// TakeDirty atomically returns dev's coalesced dirty regions and clears
// them. The caller owns replaying the returned regions; on failure it
// must re-mark them (MarkRange is idempotent) or the intents are lost.
func (l *Log) TakeDirty(dev int) []Region {
	if l == nil || dev < 0 || dev >= len(l.bits) {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.collect(dev)
	if len(out) > 0 {
		clear(l.bits[dev])
		l.dirty[dev] = 0
		l.gen++
	}
	return out
}

// collect builds the coalesced region list for dev. l.mu held.
func (l *Log) collect(dev int) []Region {
	var out []Region
	bits := l.bits[dev]
	regions := l.regions()
	runStart := int64(-1)
	flushRun := func(endRegion int64) {
		if runStart < 0 {
			return
		}
		start := runStart * l.regionBlocks
		end := endRegion * l.regionBlocks
		if end > l.deviceBlocks {
			end = l.deviceBlocks
		}
		out = append(out, Region{Start: start, Count: end - start})
		runStart = -1
	}
	for r := int64(0); r < regions; r++ {
		if bits[r/64]&(1<<uint(r%64)) != 0 {
			if runStart < 0 {
				runStart = r
			}
		} else {
			flushRun(r)
		}
	}
	flushRun(regions)
	return out
}

// ClearDev drops every dirty mark on dev (a completed full rebuild
// supersedes the intents).
func (l *Log) ClearDev(dev int) {
	if l == nil || dev < 0 || dev >= len(l.bits) {
		return
	}
	l.mu.Lock()
	if l.dirty[dev] != 0 {
		clear(l.bits[dev])
		l.dirty[dev] = 0
		l.gen++
	}
	l.mu.Unlock()
}

// AnyDirty reports whether any device has dirty regions.
func (l *Log) AnyDirty() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, n := range l.dirty {
		if n > 0 {
			return true
		}
	}
	return false
}

// Gen reports the mutation generation: it changes whenever the log
// does, so a persistence loop can skip snapshots of an unchanged log.
func (l *Log) Gen() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// snapshotMagic guards snapshot decoding ("RXI1": RAID-x intents v1).
const snapshotMagic = 0x52584931

// MarshalBinary serializes the log: magic, geometry, then each device's
// bitset. The format is fixed-size and self-describing enough for Merge
// to reject snapshots of a different geometry.
func (l *Log) MarshalBinary() ([]byte, error) {
	if l == nil {
		return nil, fmt.Errorf("intent: marshal of nil log")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	words := int64(0)
	if len(l.bits) > 0 {
		words = int64(len(l.bits[0]))
	}
	b := make([]byte, 0, 32+len(l.bits)*int(words)*8)
	b = binary.BigEndian.AppendUint32(b, snapshotMagic)
	b = binary.BigEndian.AppendUint32(b, uint32(len(l.bits)))
	b = binary.BigEndian.AppendUint64(b, uint64(l.deviceBlocks))
	b = binary.BigEndian.AppendUint64(b, uint64(l.regionBlocks))
	for _, bits := range l.bits {
		for _, w := range bits {
			b = binary.BigEndian.AppendUint64(b, w)
		}
	}
	return b, nil
}

// SaveTo durably writes the log's snapshot to path through fs (nil fs
// takes the real file system) with the full atomic discipline — temp
// file, fsync, rename, directory fsync — so a crash mid-save leaves the
// previous snapshot intact, never a torn one. This is how a node
// remembers its own dirty regions across a restart without asking the
// cluster.
func (l *Log) SaveTo(fs store.FS, path string) error {
	if fs == nil {
		fs = store.OS
	}
	snap, err := l.MarshalBinary()
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(fs, path, snap)
}

// LoadFrom merges the snapshot at path into the log. A missing file is
// not an error — there is simply nothing to recover.
func (l *Log) LoadFrom(fs store.FS, path string) error {
	if fs == nil {
		fs = store.OS
	}
	snap, err := store.ReadFileFS(fs, path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	return l.Merge(snap)
}

// Merge unions a snapshot produced by MarshalBinary into the log:
// regions dirty in either become dirty. Used at repair-host recovery to
// fold persisted intents back in; per-device geometry must match. A
// snapshot tracking FEWER devices than the log merges as a prefix —
// that is a snapshot taken before an online grow, and device indices
// are stable across grows.
func (l *Log) Merge(snap []byte) error {
	if l == nil {
		return fmt.Errorf("intent: merge into nil log")
	}
	if len(snap) < 24 {
		return fmt.Errorf("intent: short snapshot (%d bytes)", len(snap))
	}
	if binary.BigEndian.Uint32(snap[0:4]) != snapshotMagic {
		return fmt.Errorf("intent: bad snapshot magic")
	}
	devices := int(binary.BigEndian.Uint32(snap[4:8]))
	deviceBlocks := int64(binary.BigEndian.Uint64(snap[8:16]))
	regionBlocks := int64(binary.BigEndian.Uint64(snap[16:24]))
	l.mu.Lock()
	defer l.mu.Unlock()
	if devices > len(l.bits) || deviceBlocks != l.deviceBlocks || regionBlocks != l.regionBlocks {
		return fmt.Errorf("intent: snapshot geometry %dx%d/%d does not match log %dx%d/%d",
			devices, deviceBlocks, regionBlocks, len(l.bits), l.deviceBlocks, l.regionBlocks)
	}
	body := snap[24:]
	words := 0
	if devices > 0 {
		words = len(l.bits[0])
	}
	if len(body) != devices*words*8 {
		return fmt.Errorf("intent: snapshot body %d bytes, want %d", len(body), devices*words*8)
	}
	for dev := 0; dev < devices; dev++ {
		bitset := l.bits[dev]
		for w := 0; w < words; w++ {
			v := binary.BigEndian.Uint64(body[(dev*words+w)*8:])
			added := v &^ bitset[w]
			if added != 0 {
				bitset[w] |= added
				l.dirty[dev] += int64(bits.OnesCount64(added))
			}
		}
	}
	l.gen++
	return nil
}
