package intent

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/store"
)

func TestLogSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intent.snap")
	l := NewLog(4, 1000, 8)
	l.MarkRange(1, 16, 24)
	l.MarkRange(3, 990, 10)
	if err := l.SaveTo(nil, path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLog(4, 1000, 8)
	if err := l2.LoadFrom(nil, path); err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < 4; dev++ {
		if got, want := l2.Dirty(dev), l.Dirty(dev); !reflect.DeepEqual(got, want) {
			t.Fatalf("dev %d: loaded %+v, want %+v", dev, got, want)
		}
	}
	// Loading merges by union: pre-existing marks survive.
	l3 := NewLog(4, 1000, 8)
	l3.MarkRange(0, 0, 8)
	if err := l3.LoadFrom(nil, path); err != nil {
		t.Fatal(err)
	}
	if l3.DirtyRegions(0) != 1 || l3.DirtyRegions(1) != l.DirtyRegions(1) {
		t.Fatal("load clobbered pre-existing marks")
	}
}

func TestLogLoadMissingFileIsClean(t *testing.T) {
	l := NewLog(2, 100, 8)
	if err := l.LoadFrom(nil, filepath.Join(t.TempDir(), "nope.snap")); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}
	if l.AnyDirty() {
		t.Fatal("missing snapshot dirtied the log")
	}
}

func TestLogLoadGeometryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intent.snap")
	l := NewLog(4, 1000, 8)
	l.MarkRange(0, 0, 1)
	if err := l.SaveTo(store.OS, path); err != nil {
		t.Fatal(err)
	}
	// A snapshot tracking FEWER devices than the log is a snapshot taken
	// before an online grow: device indices are stable across grows, so
	// it merges as a prefix rather than refusing.
	wide := NewLog(5, 1000, 8)
	if err := wide.LoadFrom(store.OS, path); err != nil {
		t.Fatalf("pre-grow snapshot refused: %v", err)
	}
	if wide.DirtyRegions(0) == 0 {
		t.Fatal("pre-grow snapshot dirty bits lost in prefix merge")
	}
	if wide.DirtyRegions(4) != 0 {
		t.Fatal("grown device dirtied by a snapshot that predates it")
	}
	if err := NewLog(3, 1000, 8).LoadFrom(store.OS, path); err == nil {
		t.Fatal("snapshot tracking MORE devices than the log loaded silently")
	}
	if err := NewLog(4, 999, 8).LoadFrom(store.OS, path); err == nil {
		t.Fatal("device-size mismatch loaded silently")
	}
}

// TestLogSaveCrashSafe: a crash at any point during SaveTo leaves either
// the previous snapshot or the new one readable — never a torn file that
// poisons recovery.
func TestLogSaveCrashSafe(t *testing.T) {
	for failAt := int64(1); failAt <= 6; failAt++ {
		for _, op := range []store.FaultOp{store.FaultWrite, store.FaultSync, store.FaultRename, store.FaultSyncDir} {
			ffs := store.NewFaultFS(store.OS)
			path := filepath.Join(t.TempDir(), "intent.snap")
			l1 := NewLog(2, 256, 8)
			l1.MarkRange(0, 0, 16)
			if err := l1.SaveTo(ffs, path); err != nil {
				t.Fatal(err)
			}
			l1.MarkRange(1, 128, 64)
			ffs.FailNthOp(op, failAt, fmt.Errorf("injected"))
			saveErr := l1.SaveTo(ffs, path)
			ffs.Crash()

			l2 := NewLog(2, 256, 8)
			if err := l2.LoadFrom(ffs, path); err != nil {
				t.Fatalf("%v/%d (save err %v): recovery load failed: %v", op, failAt, saveErr, err)
			}
			// Whatever generation survived, device 0's marks are in it.
			if l2.DirtyRegions(0) == 0 {
				t.Fatalf("%v/%d: base snapshot lost", op, failAt)
			}
		}
	}
}

// FuzzLogMerge: merging arbitrary bytes must never panic or corrupt the
// log's dirty accounting; a successful merge of a valid snapshot must
// union, and DirtyBlocks must stay consistent with DirtyRegions.
func FuzzLogMerge(f *testing.F) {
	seed := NewLog(3, 500, 16)
	seed.MarkRange(0, 0, 100)
	seed.MarkRange(2, 499, 1)
	if snap, err := seed.MarshalBinary(); err == nil {
		f.Add(snap)
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x58, 0x49, 0x31})
	f.Fuzz(func(t *testing.T, data []byte) {
		l := NewLog(3, 500, 16)
		l.MarkRange(1, 32, 16)
		before := l.DirtyRegions(1)
		if err := l.Merge(data); err != nil {
			// A rejected merge must leave the log untouched.
			if l.DirtyRegions(1) != before {
				t.Fatal("failed merge mutated the log")
			}
			return
		}
		for dev := 0; dev < 3; dev++ {
			regions := l.Dirty(dev)
			var blocks, n int64
			for _, r := range regions {
				if r.Start < 0 || r.Count <= 0 || r.Start+r.Count > 500 {
					t.Fatalf("dev %d: out-of-range region %+v", dev, r)
				}
				blocks += r.Count
			}
			n = l.DirtyBlocks(dev)
			if n != blocks {
				t.Fatalf("dev %d: DirtyBlocks %d != sum %d", dev, n, blocks)
			}
		}
		if l.DirtyRegions(1) < before {
			t.Fatal("merge dropped pre-existing marks")
		}
	})
}
