package intent

import (
	"sync"
	"testing"
)

func TestMarkAndCollect(t *testing.T) {
	l := NewLog(4, 1000, 10)
	if l.AnyDirty() {
		t.Fatal("fresh log reports dirty")
	}
	// Blocks 5..24 span regions 0..2 (blocks 0..29).
	l.MarkRange(2, 5, 20)
	if got := l.DirtyRegions(2); got != 3 {
		t.Fatalf("dirty regions = %d, want 3", got)
	}
	regions := l.Dirty(2)
	if len(regions) != 1 || regions[0] != (Region{Start: 0, Count: 30}) {
		t.Fatalf("regions = %+v, want one run [0,30)", regions)
	}
	// Disjoint mark coalesces separately.
	l.MarkRange(2, 500, 1)
	regions = l.Dirty(2)
	if len(regions) != 2 || regions[1] != (Region{Start: 500, Count: 10}) {
		t.Fatalf("regions = %+v, want second run [500,510)", regions)
	}
	// Other devices are untouched.
	if l.DirtyRegions(0) != 0 || len(l.Dirty(0)) != 0 {
		t.Fatal("mark leaked to another device")
	}
}

func TestTakeDirtyClears(t *testing.T) {
	l := NewLog(2, 100, 10)
	l.MarkRange(1, 0, 100)
	got := l.TakeDirty(1)
	if len(got) != 1 || got[0] != (Region{Start: 0, Count: 100}) {
		t.Fatalf("take = %+v", got)
	}
	if l.AnyDirty() || len(l.TakeDirty(1)) != 0 {
		t.Fatal("take did not clear")
	}
	// Re-marking after a take (the failure path) restores the intents.
	for _, r := range got {
		l.MarkRange(1, r.Start, r.Count)
	}
	if l.DirtyRegions(1) != 10 {
		t.Fatalf("re-mark restored %d regions, want 10", l.DirtyRegions(1))
	}
}

func TestEndOfDeviceClamp(t *testing.T) {
	// 95 blocks at granularity 10: the last region is a short one.
	l := NewLog(1, 95, 10)
	l.MarkRange(0, 90, 50) // overshoots the device
	regions := l.Dirty(0)
	if len(regions) != 1 || regions[0] != (Region{Start: 90, Count: 5}) {
		t.Fatalf("regions = %+v, want clamped [90,95)", regions)
	}
	l.MarkRange(0, -5, 3) // entirely out of range low side after clamp? [0,?) no: [-5,-2) clamps empty
	if l.DirtyRegions(0) != 1 {
		t.Fatalf("out-of-range mark changed the log: %d regions", l.DirtyRegions(0))
	}
}

func TestMarshalMerge(t *testing.T) {
	a := NewLog(3, 640, 64)
	b := NewLog(3, 640, 64)
	a.MarkRange(0, 0, 64)
	b.MarkRange(0, 128, 64)
	b.MarkRange(2, 0, 640)
	snap, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if got := a.DirtyRegions(0); got != 2 {
		t.Fatalf("dev 0 regions after merge = %d, want 2", got)
	}
	if got := a.DirtyRegions(2); got != 10 {
		t.Fatalf("dev 2 regions after merge = %d, want 10", got)
	}
	// Geometry mismatch is rejected.
	c := NewLog(3, 640, 32)
	if err := c.Merge(snap); err == nil {
		t.Fatal("mismatched geometry merged")
	}
	// Garbage is rejected.
	if err := a.Merge([]byte("nonsense")); err == nil {
		t.Fatal("garbage snapshot merged")
	}
}

func TestGenTracksMutation(t *testing.T) {
	l := NewLog(1, 100, 10)
	g0 := l.Gen()
	l.MarkRange(0, 0, 1)
	if l.Gen() == g0 {
		t.Fatal("mark did not bump generation")
	}
	g1 := l.Gen()
	l.TakeDirty(0)
	if l.Gen() == g1 {
		t.Fatal("take did not bump generation")
	}
	g2 := l.Gen()
	l.TakeDirty(0) // no-op: nothing dirty
	if l.Gen() != g2 {
		t.Fatal("empty take bumped generation")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.MarkRange(0, 0, 10)
	if l.AnyDirty() || l.Dirty(0) != nil || l.TakeDirty(0) != nil ||
		l.DirtyRegions(0) != 0 || l.DirtyBlocks(0) != 0 ||
		l.RegionBlocks() != 0 || l.Devices() != 0 || l.Gen() != 0 {
		t.Fatal("nil log not inert")
	}
	l.ClearDev(0)
	if _, err := l.MarshalBinary(); err == nil {
		t.Fatal("nil marshal succeeded")
	}
	if err := l.Merge(nil); err == nil {
		t.Fatal("nil merge succeeded")
	}
}

func TestConcurrentMarks(t *testing.T) {
	l := NewLog(4, 10000, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				l.MarkRange(g%4, i*7%10000, 5)
				if i%100 == 0 {
					l.Dirty(g % 4)
				}
			}
		}(g)
	}
	wg.Wait()
	for dev := 0; dev < 4; dev++ {
		var n int64
		for _, r := range l.Dirty(dev) {
			n += r.Count
		}
		if n != l.DirtyBlocks(dev) {
			t.Fatalf("dev %d: inconsistent dirty accounting", dev)
		}
	}
}
