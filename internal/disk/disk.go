// Package disk models the cluster's physical disks. A Disk couples a
// real block store (the bytes) with a timing model (seek, rotation,
// transfer) charged on a vclock resource, plus failure injection for
// reliability experiments.
//
// The timing model distinguishes random from sequential access: a
// request that continues where the previous one ended pays only a small
// track-to-track positioning cost. This is the mechanism behind the
// paper's orthogonal striping and mirroring (OSM) advantage — mirror
// groups are gathered into one long sequential write on a single disk
// instead of scattered small writes.
//
// Timing is charged only when the context carries a vclock.Proc; without
// one (real-time mode, pure correctness tests) the disk just moves the
// bytes.
package disk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ErrFailed is returned (wrapped) for any access to a failed disk.
var ErrFailed = errors.New("disk failed")

// FailedError wraps ErrFailed with the identity of the failed disk.
type FailedError struct{ ID string }

func (e *FailedError) Error() string { return fmt.Sprintf("disk %s: failed", e.ID) }
func (e *FailedError) Unwrap() error { return ErrFailed }

// Model is the performance model of one disk, loosely calibrated to the
// ~10 GB SCSI disks of the paper's 1999 Trojans cluster.
type Model struct {
	// Seek is the average positioning time (seek + rotational latency)
	// paid by a request that does not continue the previous transfer.
	Seek time.Duration
	// TrackSkip is the positioning time for a sequential continuation.
	TrackSkip time.Duration
	// BandwidthBps is the media transfer rate in bytes per second.
	BandwidthBps float64
	// PerRequest is fixed controller overhead per request.
	PerRequest time.Duration
}

// DefaultModel matches a late-1990s 7200 RPM SCSI disk: ~8 ms average
// seek, ~4 ms rotational latency (folded into Seek), ~10 MB/s media rate.
func DefaultModel() Model {
	return Model{
		Seek:         10 * time.Millisecond,
		TrackSkip:    500 * time.Microsecond,
		BandwidthBps: 10e6,
		PerRequest:   200 * time.Microsecond,
	}
}

// AccessTime reports how long transferring n bytes takes under the
// model, given whether the access continues the previous one.
func (m Model) AccessTime(n int, sequential bool) time.Duration {
	pos := m.Seek
	if sequential {
		pos = m.TrackSkip
	}
	xfer := time.Duration(float64(n) / m.BandwidthBps * float64(time.Second))
	return m.PerRequest + pos + xfer
}

// Disk is one simulated disk: a block store plus arm timing and failure
// state. All methods are safe only under the vclock's cooperative
// scheduling or external synchronization; the underlying store is
// itself concurrency-safe.
type Disk struct {
	id    string
	st    store.BlockStore
	model Model
	arm   *vclock.Resource // nil => no timing (pure data mode)
	// bg is the deferred-write lane: background writes serialize among
	// themselves here instead of occupying the arm, modelling the CDD's
	// low-priority idle-time mirror updates that never delay foreground
	// requests. Flush drains both lanes.
	bg *vclock.Resource

	// mu guards the mutable state below in real-time mode, where array
	// engines issue parallel per-disk I/O from goroutines. (Virtual-time
	// mode is cooperatively single-threaded, so the lock is
	// uncontended there.)
	mu            sync.Mutex
	failed        bool
	failCountdown int64 // >0: fail after this many more requests
	nextBlock     int64 // expected block for a sequential continuation
	bgNextBlock   int64 // sequential detection for the background lane
	reads         int64
	writes        int64
	bytesRead     int64
	bytesWritten  int64
	seqHits       int64 // foreground accesses that continued the previous one
}

// New creates a disk over st. If sim is non-nil, a single-server arm
// resource is created on it and every access charges virtual time.
func New(sim *vclock.Sim, id string, st store.BlockStore, model Model) *Disk {
	d := &Disk{id: id, st: st, model: model, nextBlock: -1, bgNextBlock: -1}
	if sim != nil {
		d.arm = vclock.NewResource(sim, "disk:"+id, 1)
		d.bg = vclock.NewResource(sim, "diskbg:"+id, 1)
	}
	return d
}

// ID returns the disk's identifier.
func (d *Disk) ID() string { return d.id }

// BlockSize reports the block size in bytes.
func (d *Disk) BlockSize() int { return d.st.BlockSize() }

// NumBlocks reports capacity in blocks.
func (d *Disk) NumBlocks() int64 { return d.st.NumBlocks() }

// Model returns the disk's timing model.
func (d *Disk) Model() Model { return d.model }

// Healthy reports whether the disk is serving requests.
func (d *Disk) Healthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.failed
}

// Fail marks the disk failed; all subsequent accesses error.
func (d *Disk) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// FailAfter arranges for the disk to fail after n more requests
// complete, for failure-injection tests.
func (d *Disk) FailAfter(n int64) {
	d.mu.Lock()
	d.failCountdown = n
	d.mu.Unlock()
}

// Readmit clears the failure while keeping the store, modelling a disk
// whose node blipped offline (partition, restart) and came back with
// its data intact but possibly stale — the delta-resync case, as
// opposed to the blank-replacement rebuild case of Replace.
func (d *Disk) Readmit() {
	d.mu.Lock()
	d.failed = false
	d.failCountdown = 0
	d.mu.Unlock()
}

// Replace presents a fresh zeroed store of the same geometry and clears
// the failure, modelling a hot-swapped replacement disk awaiting rebuild.
//
// A store that can erase itself (store.Blanker — file-backed images,
// Mem) is blanked in place, so the old contents are destroyed on the
// backing medium too; swapping in a fresh in-memory store over a
// file-backed one would only forget the data until the next restart,
// and the "blank" disk's old blocks would resurrect. Only a store that
// cannot blank itself is swapped for a fresh Mem.
func (d *Disk) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.st.(store.Blanker); ok {
		if err := b.Blank(); err != nil {
			return fmt.Errorf("disk %s: blank: %w", d.id, err)
		}
	} else {
		d.st = store.NewMem(d.st.BlockSize(), d.st.NumBlocks())
	}
	d.failed = false
	d.failCountdown = 0
	d.nextBlock = -1
	d.bgNextBlock = -1
	return nil
}

// Stats reports cumulative operation counts.
func (d *Disk) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.bytesRead, d.bytesWritten
}

// SeqHits reports how many foreground accesses continued the previous
// transfer (the sequential-hit rate is SeqHits over reads+writes).
// Tracked in both timed (vclock) and pure data mode.
func (d *Disk) SeqHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seqHits
}

// Arm exposes the disk's foreground timing resource (nil in pure data
// mode); the benchmark harness uses it for utilization reports.
func (d *Disk) Arm() *vclock.Resource { return d.arm }

// BgLane exposes the deferred-write lane (nil in pure data mode).
func (d *Disk) BgLane() *vclock.Resource { return d.bg }

// QueueBacklog reports how much queued foreground work the disk is
// holding right now (zero in pure data mode). Load-balancing read
// policies use it to pick the less-loaded copy.
func (d *Disk) QueueBacklog() time.Duration {
	if d.arm == nil {
		return 0
	}
	return d.arm.Backlog()
}

// BgQueueBacklog reports how much deferred-write (background mirror)
// work is queued on the disk's background lane (zero in pure data
// mode). Observability gauges use it to show how far redundancy
// convergence lags behind foreground traffic.
func (d *Disk) BgQueueBacklog() time.Duration {
	if d.bg == nil {
		return 0
	}
	return d.bg.Backlog()
}

func (d *Disk) checkUp() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return &FailedError{ID: d.id}
	}
	if d.failCountdown > 0 {
		d.failCountdown--
		if d.failCountdown == 0 {
			d.failed = true
		}
	}
	return nil
}

// blockCount validates a multi-block buffer and returns its length in
// blocks.
func (d *Disk) blockCount(b int64, buf []byte) (int64, error) {
	bs := d.st.BlockSize()
	if len(buf) == 0 || len(buf)%bs != 0 {
		return 0, &store.SizeError{Got: len(buf), Want: bs}
	}
	n := int64(len(buf) / bs)
	if b < 0 || b+n > d.st.NumBlocks() {
		return 0, &store.RangeError{Block: b + n - 1, Max: d.st.NumBlocks()}
	}
	return n, nil
}

// noteAccess updates sequential-run detection for an n-byte access at
// block b and reports whether it continued the previous transfer.
func (d *Disk) noteAccess(b int64, n int, background bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if background {
		seq := b == d.bgNextBlock
		d.bgNextBlock = b + int64(n/d.st.BlockSize())
		return seq
	}
	seq := b == d.nextBlock
	d.nextBlock = b + int64(n/d.st.BlockSize())
	if seq {
		d.seqHits++
	}
	return seq
}

// charge applies the timing model for an n-byte access at block b.
// Background writes are reserved on the deferred-write lane without
// blocking the caller. Accesses without a vclock process in ctx are
// administrative (prefill, verification) and charge nothing — and do
// not perturb sequential detection. In pure data mode (no sim) there is
// no timing, but sequential runs are still tracked so real-time
// deployments report a sequential-hit rate.
func (d *Disk) charge(ctx context.Context, b int64, n int, background bool) {
	if d.arm == nil {
		d.noteAccess(b, n, background)
		return
	}
	p, hasProc := vclock.From(ctx)
	if !hasProc {
		return
	}
	if background {
		d.bg.Reserve(d.model.AccessTime(n, d.noteAccess(b, n, true)))
		return
	}
	d.arm.Use(p, d.model.AccessTime(n, d.noteAccess(b, n, false)))
}

// ReadBlocks reads len(buf)/BlockSize consecutive blocks starting at b.
func (d *Disk) ReadBlocks(ctx context.Context, b int64, buf []byte) (err error) {
	h := trace.StartLeaf(ctx, "disk.read", d.id)
	h.Val = int64(len(buf))
	defer func() { h.End(err) }()
	if err := d.checkUp(); err != nil {
		return err
	}
	n, err := d.blockCount(b, buf)
	if err != nil {
		return err
	}
	d.charge(ctx, b, len(buf), false)
	bs := d.st.BlockSize()
	for i := int64(0); i < n; i++ {
		if err := d.st.ReadBlock(b+i, buf[int(i)*bs:int(i+1)*bs]); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.reads++
	d.bytesRead += int64(len(buf))
	d.mu.Unlock()
	return nil
}

// WriteBlocks writes len(data)/BlockSize consecutive blocks starting at
// b, blocking for the full access time.
func (d *Disk) WriteBlocks(ctx context.Context, b int64, data []byte) error {
	return d.write(ctx, b, data, false)
}

// WriteBlocksBackground writes like WriteBlocks but does not block the
// caller for the disk time: the bytes are applied immediately (they are
// durable for simulation purposes) while the arm time is reserved in the
// background, exactly the deferred mirror-update semantics of the CDD.
// Foreground requests issued afterwards queue behind the reservation.
func (d *Disk) WriteBlocksBackground(ctx context.Context, b int64, data []byte) error {
	return d.write(ctx, b, data, true)
}

func (d *Disk) write(ctx context.Context, b int64, data []byte, background bool) (err error) {
	name := "disk.write"
	if background {
		name = "disk.bg-write"
	}
	h := trace.StartLeaf(ctx, name, d.id)
	h.Val = int64(len(data))
	defer func() { h.End(err) }()
	if err := d.checkUp(); err != nil {
		return err
	}
	n, err := d.blockCount(b, data)
	if err != nil {
		return err
	}
	d.charge(ctx, b, len(data), background)
	bs := d.st.BlockSize()
	for i := int64(0); i < n; i++ {
		if err := d.st.WriteBlock(b+i, data[int(i)*bs:int(i+1)*bs]); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.writes++
	d.bytesWritten += int64(len(data))
	d.mu.Unlock()
	return nil
}

// Flush blocks until all background (reserved) work on the disk has
// drained.
func (d *Disk) Flush(ctx context.Context) (err error) {
	h := trace.StartLeaf(ctx, "disk.flush", d.id)
	defer func() { h.End(err) }()
	d.mu.Lock()
	failed := d.failed
	d.mu.Unlock()
	if failed {
		return &FailedError{ID: d.id}
	}
	if d.arm == nil {
		return nil
	}
	if p, ok := vclock.From(ctx); ok {
		d.arm.Drain(p)
		d.bg.Drain(p)
	}
	return nil
}
