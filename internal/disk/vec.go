package disk

import (
	"context"

	"repro/internal/store"
	"repro/internal/trace"
)

// vecLen validates a scatter/gather list (each segment a positive
// multiple of the block size) and returns its total byte length.
func (d *Disk) vecLen(b int64, segs [][]byte) (int, error) {
	bs := d.st.BlockSize()
	total := 0
	for _, s := range segs {
		if len(s) == 0 || len(s)%bs != 0 {
			return 0, &store.SizeError{Got: len(s), Want: bs}
		}
		total += len(s)
	}
	if total == 0 {
		return 0, &store.SizeError{Got: 0, Want: bs}
	}
	n := int64(total / bs)
	if b < 0 || b+n > d.st.NumBlocks() {
		return 0, &store.RangeError{Block: b + n - 1, Max: d.st.NumBlocks()}
	}
	return total, nil
}

// ReadBlocksVec implements raid.VecDev: one disk access (one seek, one
// sequential transfer for timing purposes) scattered into segs.
func (d *Disk) ReadBlocksVec(ctx context.Context, b int64, segs [][]byte) (err error) {
	h := trace.StartLeaf(ctx, "disk.read", d.id)
	defer func() { h.End(err) }()
	if err := d.checkUp(); err != nil {
		return err
	}
	total, err := d.vecLen(b, segs)
	if err != nil {
		return err
	}
	h.Val = int64(total)
	d.charge(ctx, b, total, false)
	bs := d.st.BlockSize()
	blk := b
	for _, s := range segs {
		for off := 0; off < len(s); off += bs {
			if err := d.st.ReadBlock(blk, s[off:off+bs]); err != nil {
				return err
			}
			blk++
		}
	}
	d.mu.Lock()
	d.reads++
	d.bytesRead += int64(total)
	d.mu.Unlock()
	return nil
}

// WriteBlocksVec implements raid.VecDev: one disk access gathered from
// segs.
func (d *Disk) WriteBlocksVec(ctx context.Context, b int64, segs [][]byte) (err error) {
	h := trace.StartLeaf(ctx, "disk.write", d.id)
	defer func() { h.End(err) }()
	if err := d.checkUp(); err != nil {
		return err
	}
	total, err := d.vecLen(b, segs)
	if err != nil {
		return err
	}
	h.Val = int64(total)
	d.charge(ctx, b, total, false)
	bs := d.st.BlockSize()
	blk := b
	for _, s := range segs {
		for off := 0; off < len(s); off += bs {
			if err := d.st.WriteBlock(blk, s[off:off+bs]); err != nil {
				return err
			}
			blk++
		}
	}
	d.mu.Lock()
	d.writes++
	d.bytesWritten += int64(total)
	d.mu.Unlock()
	return nil
}
