package disk

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/vclock"
)

func newPure(t *testing.T, blocks int64) *Disk {
	t.Helper()
	return New(nil, "d0", store.NewMem(512, blocks), DefaultModel())
}

func TestPureDataRoundTrip(t *testing.T) {
	d := newPure(t, 8)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0xab}, 512*3)
	if err := d.WriteBlocks(ctx, 2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512*3)
	if err := d.ReadBlocks(ctx, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestRangeAndSizeErrors(t *testing.T) {
	d := newPure(t, 4)
	ctx := context.Background()
	if err := d.ReadBlocks(ctx, 3, make([]byte, 1024)); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := d.WriteBlocks(ctx, 0, make([]byte, 100)); err == nil {
		t.Fatal("non-multiple write size succeeded")
	}
	if err := d.ReadBlocks(ctx, 0, nil); err == nil {
		t.Fatal("empty read succeeded")
	}
}

func TestFailedDiskErrors(t *testing.T) {
	d := newPure(t, 4)
	d.Fail()
	ctx := context.Background()
	err := d.ReadBlocks(ctx, 0, make([]byte, 512))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("got %v, want ErrFailed", err)
	}
	var fe *FailedError
	if !errors.As(err, &fe) || fe.ID != "d0" {
		t.Fatalf("got %v, want FailedError{d0}", err)
	}
	if err := d.WriteBlocks(ctx, 0, make([]byte, 512)); !errors.Is(err, ErrFailed) {
		t.Fatalf("write: got %v, want ErrFailed", err)
	}
	if err := d.Flush(ctx); !errors.Is(err, ErrFailed) {
		t.Fatalf("flush: got %v, want ErrFailed", err)
	}
}

func TestFailAfterCountdown(t *testing.T) {
	d := newPure(t, 4)
	d.FailAfter(2)
	ctx := context.Background()
	buf := make([]byte, 512)
	if err := d.ReadBlocks(ctx, 0, buf); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := d.ReadBlocks(ctx, 0, buf); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := d.ReadBlocks(ctx, 0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("op 3: got %v, want ErrFailed", err)
	}
}

func TestReplaceClearsDataAndFailure(t *testing.T) {
	d := newPure(t, 4)
	ctx := context.Background()
	if err := d.WriteBlocks(ctx, 1, bytes.Repeat([]byte{7}, 512)); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if err := d.Replace(); err != nil {
		t.Fatal(err)
	}
	if !d.Healthy() {
		t.Fatal("replaced disk not healthy")
	}
	got := make([]byte, 512)
	if err := d.ReadBlocks(ctx, 1, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("replacement disk not blank")
		}
	}
}

func TestModelAccessTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, TrackSkip: time.Millisecond, BandwidthBps: 1e6, PerRequest: 0}
	if got := m.AccessTime(1e6, false); got != 10*time.Millisecond+time.Second {
		t.Fatalf("random 1MB = %v, want 1.01s", got)
	}
	if got := m.AccessTime(1e6, true); got != time.Millisecond+time.Second {
		t.Fatalf("sequential 1MB = %v, want 1.001s", got)
	}
}

func TestSimTimingRandomVsSequential(t *testing.T) {
	s := vclock.New()
	model := Model{Seek: 10 * time.Millisecond, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	d := New(s, "d0", store.NewMem(1000, 100), model)
	var first, second, third time.Duration
	s.Spawn("c", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		buf := make([]byte, 1000)
		// Random access: block 10.
		if err := d.ReadBlocks(ctx, 10, buf); err != nil {
			t.Error(err)
		}
		first = p.Now()
		// Sequential continuation: block 11 — no seek.
		if err := d.ReadBlocks(ctx, 11, buf); err != nil {
			t.Error(err)
		}
		second = p.Now()
		// Random again: block 50.
		if err := d.ReadBlocks(ctx, 50, buf); err != nil {
			t.Error(err)
		}
		third = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 bytes at 1 MB/s = 1 ms transfer.
	if first != 11*time.Millisecond {
		t.Errorf("random read finished at %v, want 11ms", first)
	}
	if second-first != time.Millisecond {
		t.Errorf("sequential read took %v, want 1ms", second-first)
	}
	if third-second != 11*time.Millisecond {
		t.Errorf("second random read took %v, want 11ms", third-second)
	}
}

func TestBackgroundWriteHidesTimeButIsDurable(t *testing.T) {
	s := vclock.New()
	model := Model{Seek: 10 * time.Millisecond, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	d := New(s, "d0", store.NewMem(1000, 100), model)
	data := bytes.Repeat([]byte{0x5a}, 1000)
	s.Spawn("c", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		if err := d.WriteBlocksBackground(ctx, 3, data); err != nil {
			t.Error(err)
		}
		if p.Now() != 0 {
			t.Errorf("background write blocked until %v", p.Now())
		}
		// Data is already visible.
		got := make([]byte, 1000)
		if err := d.ReadBlocks(ctx, 3, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("background write not durable")
		}
		// The background write runs on the deferred lane, so the
		// foreground read pays only its own seek + transfer.
		if p.Now() != 11*time.Millisecond {
			t.Errorf("foreground read finished at %v, want 11ms", p.Now())
		}
		if err := d.Flush(ctx); err != nil {
			t.Error(err)
		}
		// Flush drains the background lane (11 ms), which overlapped
		// the foreground read, so no extra wait.
		if p.Now() != 11*time.Millisecond {
			t.Errorf("flush returned at %v, want 11ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushWaitsForBackgroundWork(t *testing.T) {
	s := vclock.New()
	model := Model{Seek: 5 * time.Millisecond, TrackSkip: 0, BandwidthBps: 1e6, PerRequest: 0}
	d := New(s, "d0", store.NewMem(1000, 10), model)
	s.Spawn("c", func(p *vclock.Proc) {
		ctx := vclock.With(context.Background(), p)
		if err := d.WriteBlocksBackground(ctx, 0, make([]byte, 1000)); err != nil {
			t.Error(err)
		}
		if err := d.Flush(ctx); err != nil {
			t.Error(err)
		}
		if p.Now() != 6*time.Millisecond {
			t.Errorf("flush returned at %v, want 6ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := newPure(t, 8)
	ctx := context.Background()
	_ = d.WriteBlocks(ctx, 0, make([]byte, 1024))
	_ = d.ReadBlocks(ctx, 0, make([]byte, 512))
	r, w, br, bw := d.Stats()
	if r != 1 || w != 1 || br != 512 || bw != 1024 {
		t.Fatalf("stats = %d %d %d %d, want 1 1 512 1024", r, w, br, bw)
	}
}
