// Command raidxfs is a shell for a file system living on a RAID-x
// assembled from live CDD nodes — the whole paper's stack, drivable
// from a terminal:
//
//	ADDRS=host:7001,host:7002,host:7003,host:7004
//	raidxfs -addrs $ADDRS mkfs
//	raidxfs -addrs $ADDRS mkdir /projects
//	raidxfs -addrs $ADDRS put  local.txt /projects/notes
//	raidxfs -addrs $ADDRS ls   /projects
//	raidxfs -addrs $ADDRS get  /projects/notes -        # to stdout
//	raidxfs -addrs $ADDRS stat /projects/notes
//	raidxfs -addrs $ADDRS rm   /projects/notes
//	raidxfs -addrs $ADDRS fsck            # or: fsck -repair
//
// The -addrs list orders nodes (disk j on node j mod n). Locking uses a
// process-local lock table: concurrent raidxfs invocations from
// different machines must coordinate through a shared lock service
// (NodeClient.Lock); for a single administrative shell the local table
// suffices.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/layout"
	"repro/internal/raid"
)

func main() {
	addrs := flag.String("addrs", "", "comma-separated CDD node addresses (required)")
	owner := flag.String("owner", "raidxfs", "lock-table owner identity")
	flag.Parse()
	args := flag.Args()
	if *addrs == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: raidxfs -addrs a,b,c <mkfs|ls|mkdir|put|get|rm|mv|stat|df|fsck> [args]")
		os.Exit(2)
	}
	if err := run(*addrs, *owner, args); err != nil {
		fmt.Fprintln(os.Stderr, "raidxfs:", err)
		os.Exit(1)
	}
}

func run(addrs, owner string, args []string) error {
	list := strings.Split(addrs, ",")
	// Tolerate unreachable nodes: mount degraded with offline
	// placeholders instead of refusing to start (clients[i] is nil for
	// a node that was down; geometry comes from a reachable peer).
	clients := make([]*cdd.NodeClient, len(list))
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	var ref *cdd.NodeClient
	for i, a := range list {
		a = strings.TrimSpace(a)
		list[i] = a
		c, err := cdd.Connect(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxfs: warning: node %s unreachable (%v); operating degraded\n", a, err)
			continue
		}
		clients[i] = c
		if ref == nil {
			ref = c
		}
	}
	if ref == nil {
		return fmt.Errorf("no CDD node reachable")
	}
	perNode := ref.NumDisks()
	nodes := len(clients)
	ctx := context.Background()
	// A stale-epoch rejection mid-command means the cluster rebalanced
	// underneath this mount: every placement this engine computed is
	// suspect, so the only sound recovery is to refetch the layout,
	// rebuild the engine, and rerun the command from scratch. One
	// rebuild is allowed; a second rejection surfaces.
	for attempt := 0; ; attempt++ {
		arr, err := buildEngine(ctx, clients, list, ref, nodes, perNode)
		if err != nil {
			return err
		}
		err = runCmd(ctx, arr, owner, args, nodes, perNode)
		if err != nil && cdd.IsStaleEpoch(err) && attempt == 0 {
			fmt.Fprintln(os.Stderr, "raidxfs: layout epoch advanced mid-command; refetching the layout and retrying")
			continue
		}
		return err
	}
}

// buildEngine probes the cluster's layout epoch (the rebalance
// coordinator serves the full descriptor; plain nodes their bare
// enforced generation), tags all block I/O at the generation in force,
// and assembles the engine at that epoch.
func buildEngine(ctx context.Context, clients []*cdd.NodeClient, list []string, ref *cdd.NodeClient, nodes, perNode int) (*core.RAIDx, error) {
	var li cdd.LayoutInfo
	for _, c := range clients {
		if c == nil {
			continue
		}
		l, err := c.Layout(ctx)
		if err != nil {
			continue
		}
		if l.Desc != nil {
			li = l
			break
		}
		if l.Gen > li.Gen {
			li = l
		}
	}
	if li.Migrating {
		// Blocks are moving: the coordinator routes its own I/O around
		// the copy cursor, but this mount cannot, so below the cursor its
		// writes would land at homes the migration is about to retire.
		// The nodes are fenced against that; refuse up front with a
		// better message than the fence's rejection.
		return nil, fmt.Errorf("rebalance in flight (epoch %d -> %d, cursor %d): the coordinator is the only sanctioned writer while blocks move; retry when it completes",
			li.Gen, li.TargetGen, li.Cursor)
	}
	if li.Gen > 0 && li.Desc == nil {
		// Tagging I/O at li.Gen would make the nodes ACCEPT placements
		// computed from the seed map — exactly the corruption the epoch
		// fence exists to stop.
		return nil, fmt.Errorf("cluster enforces layout epoch %d but no reachable node serves its descriptor (rebalance coordinator down?); refusing to place I/O with the seed map", li.Gen)
	}
	for _, c := range clients {
		if c != nil && li.Gen > 0 {
			c.SetArrayEpoch(li.Gen)
		}
	}
	if li.Desc != nil && li.Desc.Gen() > 0 {
		// The cluster has rebalanced: build the device table in the
		// epoch's canonical column order (grown columns are appended, so
		// the node-major interleave below no longer holds).
		ep, err := layout.EpochFromDesc(*li.Desc)
		if err != nil {
			return nil, fmt.Errorf("cluster layout descriptor: %w", err)
		}
		if ep.Nodes() > nodes {
			return nil, fmt.Errorf("cluster is at epoch %d spanning %d nodes; -addrs lists %d", ep.Gen(), ep.Nodes(), nodes)
		}
		model := ref.Dev(0)
		devs := make([]raid.Dev, ep.Width())
		for d := range devs {
			node, local := ep.NodeOf(d), ep.LocalOf(d)
			if node >= nodes || local >= perNode {
				if !ep.Active(d) {
					continue // retired column; core tolerates a nil device
				}
				return nil, fmt.Errorf("epoch column %d is local disk %d of node %d, outside the assembled cluster", d, local, node)
			}
			if clients[node] == nil {
				devs[d] = cdd.Offline(list[node], model.BlockSize(), model.NumBlocks())
			} else {
				devs[d] = clients[node].Dev(local)
			}
		}
		return core.NewAtEpoch(devs, ep, core.Options{})
	}
	devs := make([]raid.Dev, nodes*perNode)
	for local := 0; local < perNode; local++ {
		model := ref.Dev(local)
		for node := 0; node < nodes; node++ {
			if clients[node] == nil {
				devs[node+local*nodes] = cdd.Offline(list[node], model.BlockSize(), model.NumBlocks())
			} else {
				devs[node+local*nodes] = clients[node].Dev(local)
			}
		}
	}
	return core.New(devs, nodes, perNode, core.Options{})
}

// runCmd executes one shell command against an assembled engine.
func runCmd(ctx context.Context, arr *core.RAIDx, owner string, args []string, nodes, perNode int) error {
	lk := fsim.NewTableLocker(cdd.NewTable())

	cmd, rest := args[0], args[1:]
	if cmd == "mkfs" {
		_, err := fsim.Mkfs(ctx, arr, lk, owner, fsim.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("formatted: %d blocks x %d B over %d disks\n", arr.Blocks(), arr.BlockSize(), len(arr.Devices()))
		return nil
	}

	fs, err := fsim.Mount(ctx, arr, lk, owner)
	if err != nil {
		return err
	}
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("%s: missing argument", cmd)
		}
		return nil
	}
	switch cmd {
	case "ls":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		ents, err := fs.ReadDir(ctx, path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			info, err := fs.Stat(ctx, strings.TrimRight(path, "/")+"/"+e.Name)
			if err != nil {
				return err
			}
			kind := "-"
			if info.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, info.Size, e.Name)
		}
		return nil

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return fs.MkdirAll(ctx, rest[0])

	case "put":
		if err := need(2); err != nil {
			return err
		}
		var data []byte
		if rest[0] == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(rest[0])
		}
		if err != nil {
			return err
		}
		if err := fs.WriteFile(ctx, rest[1], data); err != nil {
			return err
		}
		return fs.Flush(ctx)

	case "get":
		if err := need(1); err != nil {
			return err
		}
		data, err := fs.ReadFile(ctx, rest[0])
		if err != nil {
			return err
		}
		if len(rest) < 2 || rest[1] == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(rest[1], data, 0o644)

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return fs.Remove(ctx, rest[0])

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		info, err := fs.Stat(ctx, rest[0])
		if err != nil {
			return err
		}
		kind := "file"
		if info.IsDir {
			kind = "directory"
		}
		fmt.Printf("%s: %s, %d bytes, inode %d\n", rest[0], kind, info.Size, info.Ino)
		return nil

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return fs.Rename(ctx, rest[0], rest[1])

	case "fsck":
		repair := len(rest) > 0 && rest[0] == "-repair"
		var rep *fsim.FsckReport
		if repair {
			rep, err = fs.Repair(ctx)
		} else {
			rep, err = fs.Fsck(ctx)
		}
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for _, p := range rep.Problems {
			fmt.Println("  problem:", p)
		}
		if !rep.OK() {
			return fmt.Errorf("volume inconsistent (re-run with -repair to release leaks)")
		}
		return nil

	case "df":
		st, err := fs.StatFS(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("array: %d blocks x %d B = %d MB raw (RAID-x %dx%d)\n",
			arr.Blocks(), arr.BlockSize(), arr.Blocks()*int64(arr.BlockSize())>>20, nodes, perNode)
		fmt.Printf("fs:    %d/%d data blocks free (%d MB), %d/%d inodes free\n",
			st.FreeBlocks, st.TotalBlocks, st.FreeBlocks*int64(st.BlockSize)>>20,
			st.FreeInodes, st.TotalInodes)
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}
