package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

// diskRow aggregates the per-disk gauges of one node snapshot.
type diskRow struct {
	reads, writes, bytesRead, bytesWritten int64
	seqHits, backlogUS, bgBacklogUS        int64
	healthy                                int64
}

// runStats fetches every node's observability registry and renders
// per-node operation counters, per-disk tables, latency histograms, and
// the most recent health events.
func runStats(fs *flag.FlagSet, r *rig) error {
	nEvents := atoi(fs.Lookup("events").Value.String())
	for node, c := range r.clients {
		if node > 0 {
			fmt.Println()
		}
		if c == nil {
			fmt.Printf("node %d (%s): OFFLINE (unreachable)\n", node, r.addrs[node])
			continue
		}
		snap, err := c.ObsSnapshot(context.Background())
		if err != nil {
			fmt.Printf("node %d (%s): stats unavailable: %v\n", node, c.Addr(), err)
			continue
		}
		fmt.Printf("node %d (%s):\n", node, c.Addr())
		printCounters(snap)
		renderVolumes(os.Stdout, snap, "  ")
		printDisks(snap)
		printHistograms(snap)
		printEvents(snap, nEvents)
	}
	return nil
}

func printCounters(snap obs.Snapshot) {
	keys := obs.SortedKeys(snap.Counters)
	if len(keys) == 0 {
		return
	}
	fmt.Println("  counters:")
	for _, k := range keys {
		fmt.Printf("    %-24s %12d\n", k, snap.Counters[k])
	}
}

// printDisks folds the "disk.<id>.<field>" gauges into one table row
// per disk.
func printDisks(snap obs.Snapshot) {
	rows := map[string]*diskRow{}
	for name, v := range snap.Gauges {
		rest, ok := strings.CutPrefix(name, "disk.")
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			continue
		}
		id, field := rest[:i], rest[i+1:]
		row := rows[id]
		if row == nil {
			row = &diskRow{}
			rows[id] = row
		}
		switch field {
		case "reads":
			row.reads = v
		case "writes":
			row.writes = v
		case "bytes_read":
			row.bytesRead = v
		case "bytes_written":
			row.bytesWritten = v
		case "seq_hits":
			row.seqHits = v
		case "backlog_us":
			row.backlogUS = v
		case "bg_backlog_us":
			row.bgBacklogUS = v
		case "healthy":
			row.healthy = v
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("  disks:")
	fmt.Printf("    %-12s %8s %8s %9s %9s %6s %10s %10s %8s\n",
		"disk", "reads", "writes", "MB read", "MB writ", "seq%", "backlog", "bg-backlog", "state")
	for _, id := range obs.SortedKeys(rows) {
		row := rows[id]
		ops := row.reads + row.writes
		seqPct := 0.0
		if ops > 0 {
			seqPct = 100 * float64(row.seqHits) / float64(ops)
		}
		state := "healthy"
		if row.healthy == 0 {
			state = "FAILED"
		}
		fmt.Printf("    %-12s %8d %8d %9d %9d %5.1f%% %10s %10s %8s\n",
			id, row.reads, row.writes, row.bytesRead>>20, row.bytesWritten>>20, seqPct,
			time.Duration(row.backlogUS)*time.Microsecond,
			time.Duration(row.bgBacklogUS)*time.Microsecond, state)
	}
}

func printHistograms(snap obs.Snapshot) {
	keys := obs.SortedKeys(snap.Histograms)
	if len(keys) == 0 {
		return
	}
	fmt.Println("  latency:")
	fmt.Printf("    %-24s %10s %10s %10s %10s %10s\n", "histogram", "count", "p50", "p95", "p99", "max")
	for _, k := range keys {
		h := snap.Histograms[k]
		fmt.Printf("    %-24s %10d %10s %10s %10s %10s\n",
			k, h.Count, h.P50.Round(time.Microsecond), h.P95.Round(time.Microsecond),
			h.P99.Round(time.Microsecond), h.Max.Round(time.Microsecond))
	}
}

func printEvents(snap obs.Snapshot, n int) {
	evs := snap.Events
	if len(evs) == 0 || n <= 0 {
		return
	}
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	fmt.Printf("  events (last %d):\n", len(evs))
	for _, e := range evs {
		detail := e.Detail
		if detail != "" {
			detail = ": " + detail
		}
		fmt.Printf("    %s  %-14s %s%s\n", e.Time.Format("15:04:05.000"), e.Kind, e.Subject, detail)
	}
}
