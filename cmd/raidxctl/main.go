// Command raidxctl inspects and drives RAID-x clusters:
//
//	raidxctl layout -nodes 4 -disks 1 -rows 3    print the OSM block map
//	                                             (paper Figures 1a / 3)
//	raidxctl status -addrs host:port,...         show remote node disks
//	raidxctl stats -addrs host:port,...          per-node op counters,
//	                                             per-disk tables, latency
//	                                             percentiles, event log
//	raidxctl fail -addrs ... -node 2 -disk 0     inject a disk failure
//	raidxctl replace -addrs ... -node 2 -disk 0  install a blank disk
//	raidxctl rebuild -addrs ... -node 2 -disk 0  rebuild it from redundancy
//	                                             (refused while the repair
//	                                             supervisor owns the disk)
//	raidxctl verify -addrs ...                   check all images match
//	raidxctl super <image.img> ...               decode the checksummed
//	                                             superblock of on-disk
//	                                             images: geometry, UUIDs,
//	                                             clean-shutdown flag
//	raidxctl repair status -addrs ...            self-healing supervisor
//	raidxctl repair pause -addrs ...             state, and pause/resume
//	raidxctl repair resume -addrs ...            of background repair
//	raidxctl grow -addrs ... -new-addrs ...      add whole nodes online:
//	                                             minimal-movement rebalance
//	                                             migrates under live I/O
//	raidxctl shrink -addrs ... -nodes 1          retire tail nodes online
//	raidxctl rebalance status -addrs ...         layout epoch per node and
//	                                             migration progress
//	raidxctl trace -addrs ... -ops 8 -slowest 3  run traced probe reads and
//	                                             render waterfalls of the
//	                                             slowest, with each node's
//	                                             server-side spans merged in
//
// The -addrs list orders nodes; disks are assembled in SIOS order (disk
// j on node j mod n), so the same list must be used consistently.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "layout":
		err = runLayout(os.Args[2:])
	case "status":
		err = withCluster(os.Args[2:], runStatus)
	case "stats":
		err = withCluster(os.Args[2:], runStats)
	case "top":
		err = withCluster(os.Args[2:], runTop)
	case "fail":
		err = withCluster(os.Args[2:], runFail)
	case "replace":
		err = withCluster(os.Args[2:], runReplace)
	case "rebuild":
		err = withCluster(os.Args[2:], runRebuild)
	case "verify":
		err = withCluster(os.Args[2:], runVerify)
	case "super":
		err = runSuper(os.Args[2:])
	case "repair":
		err = runRepair(os.Args[2:])
	case "grow":
		err = runGrow(os.Args[2:])
	case "shrink":
		err = runShrink(os.Args[2:])
	case "rebalance":
		err = runRebalance(os.Args[2:])
	case "trace":
		// Record every probe op; assemble traces from the ring (no slow
		// log needed — the probe picks its own slowest).
		tr := trace.New(trace.Config{SlowThreshold: -1})
		err = withClusterOpts(os.Args[2:], core.Options{Trace: tr}, runTrace)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "raidxctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "raidxctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: raidxctl <layout|status|stats|top|fail|replace|rebuild|verify|super|repair|grow|shrink|rebalance|trace> [flags]")
}

func runLayout(args []string) error {
	fs := flag.NewFlagSet("layout", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "nodes (n)")
	disks := fs.Int("disks", 1, "disks per node (k)")
	rows := fs.Int("rows", 3, "data rows per disk to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	per := int64(*rows) * 2 * int64(*nodes-1) // enough slots for the rows shown
	lay := layout.NewOSM(*nodes, *disks, per*2)
	total := lay.TotalDisks()

	fmt.Printf("OSM layout, %dx%d array (stripe width %d, mirror groups of %d)\n\n",
		*nodes, *disks, lay.StripeWidth(), lay.GroupSize())
	fmt.Printf("%-6s", "")
	for j := 0; j < total; j++ {
		fmt.Printf(" %8s", fmt.Sprintf("D%d(n%d)", j, lay.NodeOfDisk(j)))
	}
	fmt.Println()
	for row := int64(0); row < int64(*rows); row++ {
		fmt.Printf("data%-2d", row)
		for j := 0; j < total; j++ {
			b := row*int64(total) + int64(j)
			if b < lay.DataBlocks() {
				fmt.Printf(" %8s", fmt.Sprintf("B%d", b))
			} else {
				fmt.Printf(" %8s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println()
	groups := lay.DataBlocks() / int64(lay.GroupSize())
	shown := int64(0)
	for g := int64(0); g < groups && shown < int64(*rows)*int64(total); g++ {
		loc := lay.GroupLoc(g)
		blocks := lay.GroupBlocks(g)
		fmt.Printf("mirror group %-3d -> disk D%d (node %d) at block %d: images of B%d..B%d\n",
			g, loc.Disk, lay.NodeOfDisk(loc.Disk), loc.Block, blocks[0], blocks[len(blocks)-1])
		shown += int64(len(blocks))
	}
	return nil
}

// rig is a live TCP-assembled RAID-x.
type rig struct {
	clients []*cdd.NodeClient // nil entry = node unreachable at startup
	addrs   []string
	devs    []raid.Dev
	arr     *core.RAIDx
	nodes   int
	perNode int
	ep      *layout.Epoch // non-nil once the cluster has rebalanced
}

// globalOf maps (node, local disk) to the global column index. At
// generation zero this is the SIOS interleave; after a rebalance the
// epoch's column order applies (grown columns are appended, so the
// interleave formula no longer holds).
func (r *rig) globalOf(node, local int) int {
	if r.ep == nil {
		return node + local*r.nodes
	}
	for d := 0; d < r.ep.Width(); d++ {
		if r.ep.NodeOf(d) == node && r.ep.LocalOf(d) == local {
			return d
		}
	}
	return -1
}

func withCluster(args []string, fn func(fs *flag.FlagSet, r *rig) error) error {
	return withClusterOpts(args, core.Options{}, fn)
}

// withClusterOpts assembles the rig with explicit engine options (the
// trace command passes a tracer).
func withClusterOpts(args []string, opts core.Options, fn func(fs *flag.FlagSet, r *rig) error) error {
	fs := flag.NewFlagSet("raidxctl", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated node addresses (required)")
	// The per-command flags are shared and read back through fs.Lookup
	// (target() for fail/replace/rebuild, runTrace for trace).
	fs.Int("node", 0, "target node index")
	fs.Int("disk", 0, "target local disk index")
	fs.Int("events", 8, "health events to show per node (stats)")
	fs.Int("ops", 8, "probe reads to run (trace)")
	fs.Int("slowest", 3, "waterfalls to render, slowest first (trace)")
	fs.Int("chunk", 256, "probe read size in KB (trace)")
	fs.String("id", "", "hex trace ID: assemble this trace from the node span rings instead of probing (trace)")
	fs.Duration("interval", time.Second, "refresh interval (top)")
	fs.Int("n", 0, "refresh iterations, 0 = until interrupted (top)")
	fs.Bool("plain", false, "do not clear the screen between refreshes (top)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrs == "" {
		return fmt.Errorf("-addrs is required")
	}
	list := strings.Split(*addrs, ",")
	r := &rig{nodes: len(list), addrs: list}
	defer func() {
		for _, c := range r.clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	// Tolerate unreachable nodes: operate degraded with offline
	// placeholders (r.clients[i] stays nil for a node that was down).
	r.clients = make([]*cdd.NodeClient, len(list))
	var ref *cdd.NodeClient
	for i, a := range list {
		a = strings.TrimSpace(a)
		r.addrs[i] = a
		c, err := cdd.Connect(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxctl: warning: node %s unreachable (%v); operating degraded\n", a, err)
			continue
		}
		r.clients[i] = c
		if ref == nil {
			ref = c
		}
	}
	if ref == nil {
		return fmt.Errorf("no CDD node reachable")
	}
	r.perNode = ref.NumDisks()
	for _, c := range r.clients {
		if c != nil && c.NumDisks() != r.perNode {
			return fmt.Errorf("nodes export different disk counts")
		}
	}
	// A stale-epoch rejection from the command means the cluster
	// rebalanced underneath this rig: refetch the layout, reassemble,
	// and rerun once. Control commands (status, stats, top) never tag
	// I/O and keep working during a migration; data commands bounce
	// typed off the nodes' migration fence.
	ctx := context.Background()
	for attempt := 0; ; attempt++ {
		li, err := assembleRig(ctx, r, ref, opts)
		if err != nil {
			return err
		}
		err = fn(fs, r)
		if err != nil && cdd.IsStaleEpoch(err) {
			if attempt == 0 {
				fmt.Fprintln(os.Stderr, "raidxctl: layout epoch advanced mid-command; refetching the layout and retrying")
				continue
			}
			if li.Migrating {
				return fmt.Errorf("rebalance in flight (epoch %d -> %d): block I/O is fenced to the coordinator until it completes: %w",
					li.Gen, li.TargetGen, err)
			}
		}
		return err
	}
}

// assembleRig probes the cluster's layout epoch (the rebalance
// coordinator answers OpLayout with the full descriptor; plain nodes
// with their bare enforced generation), tags all block I/O at the
// generation in force, and builds the rig's device table and engine at
// that epoch.
func assembleRig(ctx context.Context, r *rig, ref *cdd.NodeClient, opts core.Options) (cdd.LayoutInfo, error) {
	li := probeLayout(ctx, r.clients)
	for _, c := range r.clients {
		if c != nil && li.Gen > 0 {
			c.SetArrayEpoch(li.Gen)
		}
	}
	if li.Migrating {
		fmt.Fprintf(os.Stderr, "raidxctl: warning: rebalance in flight (epoch %d -> %d, cursor %d); array views may lag\n",
			li.Gen, li.TargetGen, li.Cursor)
	}
	if li.Desc != nil && li.Desc.Gen() > 0 {
		ep, err := layout.EpochFromDesc(*li.Desc)
		if err != nil {
			return li, fmt.Errorf("cluster layout descriptor: %w", err)
		}
		if ep.Nodes() > r.nodes {
			return li, fmt.Errorf("cluster is at epoch %d spanning %d nodes; -addrs lists %d", ep.Gen(), ep.Nodes(), r.nodes)
		}
		r.ep = ep
		model := ref.Dev(0)
		r.devs = make([]raid.Dev, ep.Width())
		for d := range r.devs {
			node, local := ep.NodeOf(d), ep.LocalOf(d)
			if node >= r.nodes || local >= r.perNode {
				if !ep.Active(d) {
					continue // retired column; core tolerates a nil device
				}
				return li, fmt.Errorf("epoch column %d is local disk %d of node %d, outside the assembled cluster", d, local, node)
			}
			if r.clients[node] == nil {
				r.devs[d] = cdd.Offline(r.addrs[node], model.BlockSize(), model.NumBlocks())
			} else {
				r.devs[d] = r.clients[node].Dev(local)
			}
		}
		arr, err := core.NewAtEpoch(r.devs, ep, opts)
		if err != nil {
			return li, err
		}
		r.arr = arr
		return li, nil
	}
	r.devs = make([]raid.Dev, r.nodes*r.perNode)
	for local := 0; local < r.perNode; local++ {
		model := ref.Dev(local)
		for node := 0; node < r.nodes; node++ {
			if r.clients[node] == nil {
				r.devs[node+local*r.nodes] = cdd.Offline(r.addrs[node], model.BlockSize(), model.NumBlocks())
			} else {
				r.devs[node+local*r.nodes] = r.clients[node].Dev(local)
			}
		}
	}
	arr, err := core.New(r.devs, r.nodes, r.perNode, opts)
	if err != nil {
		return li, err
	}
	r.arr = arr
	return li, nil
}

// probeLayout asks each reachable node for its layout view and returns
// the most informative answer: a full descriptor if any node serves
// one (the coordinator), otherwise the highest bare generation seen.
func probeLayout(ctx context.Context, clients []*cdd.NodeClient) cdd.LayoutInfo {
	var best cdd.LayoutInfo
	for _, c := range clients {
		if c == nil {
			continue
		}
		li, err := c.Layout(ctx)
		if err != nil {
			continue
		}
		if li.Desc != nil {
			return li
		}
		if li.Gen > best.Gen {
			best = li
		}
	}
	return best
}

func target(fs *flag.FlagSet, r *rig) (node, disk int, err error) {
	node = atoi(fs.Lookup("node").Value.String())
	disk = atoi(fs.Lookup("disk").Value.String())
	if node < 0 || node >= r.nodes || disk < 0 || disk >= r.perNode {
		return 0, 0, fmt.Errorf("target n%d/d%d out of range (%d nodes x %d disks)", node, disk, r.nodes, r.perNode)
	}
	return node, disk, nil
}

func atoi(s string) int {
	var n int
	fmt.Sscanf(s, "%d", &n)
	return n
}

func runStatus(fs *flag.FlagSet, r *rig) error {
	fmt.Printf("RAID-x over %d node(s) x %d disk(s); capacity %d blocks x %d B\n",
		r.nodes, r.perNode, r.arr.Blocks(), r.arr.BlockSize())
	if r.ep != nil {
		fmt.Printf("layout epoch %d: base %d node(s), %d active\n", r.ep.Gen(), r.ep.Base().Nodes, r.ep.Nodes())
	}
	for node, c := range r.clients {
		if c == nil {
			fmt.Printf("node %d (%s): OFFLINE (unreachable)\n", node, r.addrs[node])
			continue
		}
		fmt.Printf("node %d (%s):\n", node, c.Addr())
		for local := 0; local < r.perNode; local++ {
			d := c.Dev(local)
			d.InvalidateHealth()
			state := "healthy"
			if !d.Healthy() {
				state = "FAILED"
			}
			line := fmt.Sprintf("  disk %d (global D%d): %d blocks, %s",
				local, r.globalOf(node, local), d.NumBlocks(), state)
			if st, err := c.Stats(local); err == nil {
				line += fmt.Sprintf("  [%d reads / %d writes, %d MB in / %d MB out]",
					st.Reads, st.Writes, st.BytesWritten>>20, st.BytesRead>>20)
			}
			fmt.Println(line)
		}
	}
	return nil
}

func runFail(fs *flag.FlagSet, r *rig) error {
	node, disk, err := target(fs, r)
	if err != nil {
		return err
	}
	if r.clients[node] == nil {
		return fmt.Errorf("node %d (%s) is offline", node, r.addrs[node])
	}
	if err := r.clients[node].FailDisk(disk); err != nil {
		return err
	}
	fmt.Printf("injected failure into node %d disk %d\n", node, disk)
	return nil
}

func runReplace(fs *flag.FlagSet, r *rig) error {
	node, disk, err := target(fs, r)
	if err != nil {
		return err
	}
	if r.clients[node] == nil {
		return fmt.Errorf("node %d (%s) is offline", node, r.addrs[node])
	}
	if err := r.clients[node].ReplaceDisk(disk); err != nil {
		return err
	}
	fmt.Printf("installed blank replacement at node %d disk %d (run rebuild next)\n", node, disk)
	return nil
}

func runRebuild(fs *flag.FlagSet, r *rig) error {
	node, disk, err := target(fs, r)
	if err != nil {
		return err
	}
	global := r.globalOf(node, disk)
	if global < 0 {
		return fmt.Errorf("node %d disk %d holds no column in epoch %d", node, disk, r.ep.Gen())
	}
	rd, ok := r.devs[global].(*cdd.RemoteDev)
	if !ok {
		return fmt.Errorf("node %d (%s) is offline; bring it back before rebuilding", node, r.addrs[node])
	}
	// A manual rebuild racing the repair supervisor's own copy would
	// interleave two writers over the same device: refuse while any
	// reachable supervisor owns it.
	if owner, state := repairOwner(r, global); owner != "" {
		return fmt.Errorf("repair supervisor on %s owns D%d (state %s); wait for it to finish or run 'raidxctl repair pause' first", owner, global, state)
	}
	rd.InvalidateHealth()
	if err := r.arr.Rebuild(context.Background(), global); err != nil {
		return err
	}
	fmt.Printf("rebuilt global disk D%d (node %d disk %d)\n", global, node, disk)
	return nil
}

// repairOwner reports which node's repair supervisor (if any) currently
// owns recovery of global device idx — degraded, rebuilding, or
// resyncing. Nodes without a supervisor answer RepairStatus with an
// error and are skipped.
func repairOwner(r *rig, idx int) (addr string, state repair.State) {
	ctx := context.Background()
	for i, c := range r.clients {
		if c == nil {
			continue
		}
		raw, err := c.RepairStatus(ctx)
		if err != nil {
			continue
		}
		var st repair.Status
		if err := json.Unmarshal(raw, &st); err != nil || idx >= len(st.Devices) {
			continue
		}
		switch st.Devices[idx].State {
		case repair.StateDegraded, repair.StateRebuilding, repair.StateResyncing:
			return r.addrs[i], st.Devices[idx].State
		}
	}
	return "", ""
}

// runRepair drives the self-healing supervisor over the CDD wire:
// status, pause, resume. It probes every node and acts on whichever
// ones host a supervisor.
func runRepair(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: raidxctl repair <status|pause|resume> -addrs host:port,...")
	}
	action := args[0]
	switch action {
	case "status", "pause", "resume":
	default:
		return fmt.Errorf("unknown repair action %q (want status, pause, or resume)", action)
	}
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated node addresses (required)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *addrs == "" {
		return fmt.Errorf("-addrs is required")
	}
	ctx := context.Background()
	found := 0
	for _, a := range strings.Split(*addrs, ",") {
		a = strings.TrimSpace(a)
		c, err := cdd.Connect(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxctl: warning: node %s unreachable (%v)\n", a, err)
			continue
		}
		switch action {
		case "status":
			raw, err := c.RepairStatus(ctx)
			if err == nil {
				found++
				printRepairStatus(a, raw)
			}
		case "pause":
			if err := c.RepairPause(ctx); err == nil {
				found++
				fmt.Printf("paused repair supervisor on %s\n", a)
			}
		case "resume":
			if err := c.RepairResume(ctx); err == nil {
				found++
				fmt.Printf("resumed repair supervisor on %s\n", a)
			}
		}
		c.Close()
	}
	if found == 0 {
		return fmt.Errorf("no repair supervisor reachable (start a node with -repair-cluster)")
	}
	return nil
}

func printRepairStatus(addr string, raw []byte) {
	var st repair.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		fmt.Printf("repair supervisor on %s: undecodable status: %v\n", addr, err)
		return
	}
	run := "running"
	if st.Paused {
		run = "PAUSED"
	}
	spares := "no spare pool"
	if st.Spares >= 0 {
		spares = fmt.Sprintf("%d spare(s) left", st.Spares)
	}
	fmt.Printf("repair supervisor on %s: %s, %s\n", addr, run, spares)
	for i, d := range st.Devices {
		line := fmt.Sprintf("  D%-3d %-10s since %s  rebuilds %d  resyncs %d",
			i, d.State, d.Since.Format("15:04:05"), d.Rebuilds, d.Resyncs)
		if d.ResyncBytes > 0 {
			line += fmt.Sprintf("  resynced %d KB", d.ResyncBytes>>10)
		}
		if st.Active == i && d.Prog.Total(1) > 0 {
			line += fmt.Sprintf("  [rebuild %d/%d data blocks, %d/%d groups]",
				d.Prog.DataDone, d.Prog.DataTotal, d.Prog.GroupsDone, d.Prog.GroupsTotal)
		}
		if d.LastErr != "" {
			line += "  last error: " + d.LastErr
		}
		fmt.Println(line)
	}
}

// withCoordinator runs fn against the first node hosting a rebalance
// coordinator (the repair host). Nodes without one answer OpRebalanceCtl
// and the probe with a typed refusal and are skipped.
func withCoordinator(addrs string, fn func(ctx context.Context, c *cdd.NodeClient) error) error {
	ctx := context.Background()
	probed := 0
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		c, err := cdd.Connect(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxctl: warning: node %s unreachable (%v)\n", a, err)
			continue
		}
		li, err := c.Layout(ctx)
		if err != nil || li.Desc == nil {
			c.Close()
			continue // not the coordinator
		}
		probed++
		err = fn(ctx, c)
		c.Close()
		return err
	}
	if probed == 0 {
		return fmt.Errorf("no rebalance coordinator reachable (start a node with -repair-cluster)")
	}
	return nil
}

// runGrow adds whole nodes to a live cluster: the coordinator dials the
// joining nodes, derives the next layout epoch, and migrates the
// minimal block set in the background while foreground I/O continues.
func runGrow(args []string) error {
	fs := flag.NewFlagSet("grow", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated addresses of the CURRENT cluster nodes (required)")
	newAddrs := fs.String("new-addrs", "", "comma-separated addresses of the JOINING nodes, in join order (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrs == "" || *newAddrs == "" {
		return fmt.Errorf("-addrs and -new-addrs are required")
	}
	join := strings.Split(*newAddrs, ",")
	for i := range join {
		join[i] = strings.TrimSpace(join[i])
	}
	return withCoordinator(*addrs, func(ctx context.Context, c *cdd.NodeClient) error {
		if err := c.RebalanceCtl(ctx, "grow", len(join), join); err != nil {
			return err
		}
		fmt.Printf("grow by %d node(s) started; watch with: raidxctl rebalance status -addrs %s\n",
			len(join), *addrs)
		return nil
	})
}

// runShrink retires tail nodes from a live cluster.
func runShrink(args []string) error {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated node addresses (required)")
	nodes := fs.Int("nodes", 1, "tail nodes to retire")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrs == "" {
		return fmt.Errorf("-addrs is required")
	}
	return withCoordinator(*addrs, func(ctx context.Context, c *cdd.NodeClient) error {
		if err := c.RebalanceCtl(ctx, "shrink", *nodes, nil); err != nil {
			return err
		}
		fmt.Printf("shrink by %d node(s) started; watch with: raidxctl rebalance status -addrs %s\n",
			*nodes, *addrs)
		return nil
	})
}

// runRebalance reports the layout epoch each node enforces and, from
// the coordinator, migration progress.
func runRebalance(args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: raidxctl rebalance status -addrs host:port,...")
	}
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated node addresses (required)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *addrs == "" {
		return fmt.Errorf("-addrs is required")
	}
	ctx := context.Background()
	reached := 0
	for _, a := range strings.Split(*addrs, ",") {
		a = strings.TrimSpace(a)
		c, err := cdd.Connect(a)
		if err != nil {
			fmt.Printf("%s: unreachable (%v)\n", a, err)
			continue
		}
		li, err := c.Layout(ctx)
		c.Close()
		if err != nil {
			fmt.Printf("%s: layout query failed: %v\n", a, err)
			continue
		}
		reached++
		line := fmt.Sprintf("%s: epoch %d", a, li.Gen)
		if li.Desc != nil {
			d := li.Desc
			line += fmt.Sprintf(" [coordinator: base %dx%d, %d membership step(s)]", d.Nodes, d.DisksPerNode, len(d.Steps))
			if li.Migrating {
				line += fmt.Sprintf("  MIGRATING to epoch %d, cursor %d", li.TargetGen, li.Cursor)
			}
		}
		fmt.Println(line)
	}
	if reached == 0 {
		return fmt.Errorf("no node reachable")
	}
	return nil
}

// runSuper decodes the checksummed superblock of on-disk image files
// without opening them as stores (and so without marking them in use):
// geometry, format version, array/device identity, and whether the last
// shutdown was clean. The exit status is the audit result — any foreign,
// torn, truncated, or uncleanly-closed image fails the command, so a
// script can gate a restart on `raidxctl super dir/*.img`.
func runSuper(args []string) error {
	fs := flag.NewFlagSet("super", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: raidxctl super <image.img> ...")
	}
	bad := 0
	for _, path := range fs.Args() {
		sb, size, err := store.InspectSuperblock(store.OS, path)
		if err != nil {
			bad++
			fmt.Printf("%s: UNREADABLE: %v\n", path, err)
			continue
		}
		state := "CLEAN"
		if !sb.Clean {
			bad++
			state = "UNCLEAN (crashed or in use; expect a resync)"
		}
		want := store.SuperSize + int64(sb.BlockSize)*sb.Blocks
		short := ""
		if size < want {
			bad++
			state = "TRUNCATED"
			short = fmt.Sprintf(", file %d B short", want-size)
		}
		fmt.Printf("%s: %s\n", path, state)
		fmt.Printf("  v%d  %d blocks x %d B (%d MB%s)\n",
			sb.Version, sb.Blocks, sb.BlockSize, want>>20, short)
		fmt.Printf("  array  %s\n", store.UUIDString(sb.ArrayUUID))
		fmt.Printf("  device %s\n", store.UUIDString(sb.DeviceUUID))
		if sb.Version >= 2 {
			fmt.Printf("  epoch  %d\n", sb.ArrayEpoch)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d image(s) not clean", bad, fs.NArg())
	}
	return nil
}

func runVerify(fs *flag.FlagSet, r *rig) error {
	if err := r.arr.Verify(context.Background()); err != nil {
		return err
	}
	fmt.Println("verify: all data blocks match their images")
	return nil
}

// runTrace runs a read-only probe workload against the live array,
// fetches every node's server-side spans, and renders waterfalls for
// the slowest probes. On a degraded array the failover hop — primary
// read error plus mirror-image reads — shows up as a raidx.failover
// subtree with the time it cost.
func runTrace(fs *flag.FlagSet, r *rig) error {
	if id := fs.Lookup("id").Value.String(); id != "" {
		return runTraceByID(r, id)
	}
	tracer := r.arr.Tracer()
	ops := atoi(fs.Lookup("ops").Value.String())
	slowest := atoi(fs.Lookup("slowest").Value.String())
	chunkKB := atoi(fs.Lookup("chunk").Value.String())
	if ops < 1 {
		ops = 1
	}
	bs := r.arr.BlockSize()
	total := r.arr.Blocks()
	blocksPer := int64(chunkKB) << 10 / int64(bs)
	if blocksPer < 1 {
		blocksPer = 1
	}
	if blocksPer > total {
		blocksPer = total
	}
	buf := make([]byte, blocksPer*int64(bs))
	ctx := context.Background()

	// Deterministic probe: ops reads evenly spaced across the array.
	span := total - blocksPer
	step := int64(1)
	if ops > 1 {
		step = span / int64(ops-1)
	}
	failed := 0
	for i := 0; i < ops; i++ {
		off := step * int64(i)
		if off > span {
			off = span
		}
		if err := r.arr.ReadBlocks(ctx, off, buf); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "raidxctl: probe read at block %d: %v\n", off, err)
		}
	}

	traces := tracer.Traces(0)
	if len(traces) == 0 {
		return fmt.Errorf("no traces recorded")
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Root.Dur > traces[j].Root.Dur })
	if slowest > 0 && len(traces) > slowest {
		traces = traces[:slowest]
	}

	// One span fetch per node; each waterfall merges from the same set.
	remote := make([][]trace.Span, len(r.clients))
	for i, c := range r.clients {
		if c == nil {
			continue
		}
		sp, err := c.TraceSpans(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxctl: warning: node %d spans: %v\n", i, err)
			continue
		}
		remote[i] = sp
	}

	fmt.Printf("probe: %d read(s) x %d KB across %d blocks (%d failed); %d slowest:\n\n",
		ops, int(blocksPer)*bs>>10, total, failed, len(traces))
	for k := range traces {
		wf := traces[k]
		for i, sp := range remote {
			wf.Merge(sp, fmt.Sprintf("n%d", i))
		}
		trace.WriteWaterfall(os.Stdout, wf)
		fmt.Println()
	}
	return nil
}
