package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// renderVolumes folds the vol.* labeled family into one row per
// volume: policy (from the vol.info info-gauge's labels), logical
// capacity, redundancy overhead, and the degraded-read counter the
// engines bump once per block served by reconstruction. Shown by both
// `raidxctl stats` (per node) and `raidxctl top` (cluster merge).
func renderVolumes(w io.Writer, snap obs.Snapshot, indent string) {
	type volRow struct {
		name, policy     string
		blocks, overhead int64
		degraded         int64
	}
	rows := map[string]*volRow{}
	get := func(name string) *volRow {
		row := rows[name]
		if row == nil {
			row = &volRow{name: name}
			rows[name] = row
		}
		return row
	}
	for name, v := range snap.Gauges {
		base, _ := obs.SplitLabeled(name)
		switch base {
		case "vol.info":
			if v != 0 {
				get(obs.LabelValue(name, "volume")).policy = obs.LabelValue(name, "policy")
			}
		case "vol.blocks":
			get(obs.LabelValue(name, "volume")).blocks = v
		case "vol.capacity_overhead_pct":
			get(obs.LabelValue(name, "volume")).overhead = v
		}
	}
	for name, v := range snap.Counters {
		if base, _ := obs.SplitLabeled(name); base == "vol.degraded_reads" {
			get(obs.LabelValue(name, "volume")).degraded = v
		}
	}
	if len(rows) == 0 {
		return
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%svolumes:\n", indent)
	fmt.Fprintf(w, "%s  %-16s %-10s %12s %10s %14s\n", indent,
		"volume", "policy", "blocks", "overhead", "degraded-reads")
	for _, n := range names {
		row := rows[n]
		fmt.Fprintf(w, "%s  %-16s %-10s %12d %9d%% %14d\n", indent,
			row.name, row.policy, row.blocks, row.overhead, row.degraded)
	}
}
