package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// runTop is the live cluster dashboard: it polls every node's
// observability snapshot, merges them (counters by sum, histograms
// bucket-wise — the power-of-two edges are shared), and renders per-op
// throughput and tail latency, session cache hit ratio, per-tenant QoS
// shares with Jain fairness, SLO burn state, repair state, and trace-ID
// exemplars that drill into `raidxctl trace -id`. Rates and windowed
// percentiles are derived from the delta between successive polls.
func runTop(fs *flag.FlagSet, r *rig) error {
	interval, _ := time.ParseDuration(fs.Lookup("interval").Value.String())
	if interval <= 0 {
		interval = time.Second
	}
	iters := atoi(fs.Lookup("n").Value.String())
	plain := fs.Lookup("plain").Value.String() == "true"

	var prev obs.Snapshot
	var prevAt time.Time
	for i := 0; iters <= 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		merged, perNode, up := pollCluster(r)
		now := time.Now()
		var out strings.Builder
		renderTop(&out, r, merged, perNode, prev, now.Sub(prevAt), up, prevAt.IsZero())
		prev, prevAt = merged, now
		if !plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		os.Stdout.WriteString(out.String())
	}
	return nil
}

// pollCluster fetches every reachable node's snapshot and the merged
// cluster view. The per-node snapshots are kept for readings where a
// sum is the wrong aggregation (SLO burn rates want the worst node).
func pollCluster(r *rig) (obs.Snapshot, []obs.Snapshot, int) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snaps := make([]obs.Snapshot, 0, len(r.clients))
	up := 0
	for _, c := range r.clients {
		if c == nil {
			continue
		}
		snap, err := c.ObsSnapshot(ctx)
		if err != nil {
			continue
		}
		up++
		snaps = append(snaps, snap)
	}
	return obs.MergeSnapshots(snaps...), snaps, up
}

// counterRate derives one counter's per-second rate from the poll delta.
func counterRate(cur, prev obs.Snapshot, name string, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return float64(cur.Counters[name]-prev.Counters[name]) / dt.Seconds()
}

// windowHist derives the observations landed since the previous poll;
// falls back to the cumulative stats (ok=false) when raw buckets are
// unavailable or this is the first poll.
func windowHist(cur, prev obs.Snapshot, name string, first bool) (obs.HistogramSnapshot, bool) {
	cs, okc := cur.Histograms[name].Snapshot()
	if !okc {
		return cs, false
	}
	if first {
		return cs, true
	}
	ps, okp := prev.Histograms[name].Snapshot()
	if !okp {
		return cs, true
	}
	return cs.Sub(ps), true
}

func fmtRate(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func renderTop(w *strings.Builder, r *rig, cur obs.Snapshot, perNode []obs.Snapshot, prev obs.Snapshot, dt time.Duration, up int, first bool) {
	fmt.Fprintf(w, "raidxctl top — %s — %d/%d node(s) up", cur.Time.Format("15:04:05"), up, r.nodes)
	if first {
		fmt.Fprintf(w, " — first poll (cumulative stats; rates need one interval)")
	}
	fmt.Fprintln(w)

	// Cluster throughput from the summed per-disk byte gauges.
	if !first && dt > 0 {
		var rd, wr int64
		for name, v := range cur.Gauges {
			if strings.HasPrefix(name, "disk.") && strings.HasSuffix(name, ".bytes_read") {
				rd += v
			}
			if strings.HasPrefix(name, "disk.") && strings.HasSuffix(name, ".bytes_written") {
				wr += v
			}
		}
		var prd, pwr int64
		for name, v := range prev.Gauges {
			if strings.HasPrefix(name, "disk.") && strings.HasSuffix(name, ".bytes_read") {
				prd += v
			}
			if strings.HasPrefix(name, "disk.") && strings.HasSuffix(name, ".bytes_written") {
				pwr += v
			}
		}
		fmt.Fprintf(w, "disk I/O: %.1f MB/s read, %.1f MB/s written\n",
			float64(rd-prd)/dt.Seconds()/(1<<20), float64(wr-pwr)/dt.Seconds()/(1<<20))
	}

	renderOps(w, cur, prev, dt, first)
	renderCache(w, cur)
	renderVolumes(w, cur, "")
	renderQoS(w, cur, prev, dt, first)
	renderSLO(w, perNode)
	renderRepair(w, cur)
	renderExemplars(w, cur, prev, dt, first)
}

// renderOps is the per-op table over the mgr.op_latency{op=...} family:
// windowed ops/s and windowed p50/p95/p99 per opcode.
func renderOps(w *strings.Builder, cur, prev obs.Snapshot, dt time.Duration, first bool) {
	type opRow struct {
		op   string
		s    obs.HistogramSnapshot
		rate float64
	}
	var rows []opRow
	for name := range cur.Histograms {
		base, _ := obs.SplitLabeled(name)
		if base != "mgr.op_latency" {
			continue
		}
		s, _ := windowHist(cur, prev, name, first)
		if s.Count == 0 {
			continue
		}
		rate := 0.0
		if !first && dt > 0 {
			rate = float64(s.Count) / dt.Seconds()
		}
		rows = append(rows, opRow{op: obs.LabelValue(name, "op"), s: s, rate: rate})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.Count > rows[j].s.Count })
	fmt.Fprintln(w, "ops (since last poll):")
	fmt.Fprintf(w, "  %-14s %10s %10s %10s %10s %10s\n", "op", "count", "ops/s", "p50", "p95", "p99")
	for _, row := range rows {
		fmt.Fprintf(w, "  %-14s %10d %10s %10s %10s %10s\n",
			row.op, row.s.Count, fmtRate(row.rate),
			row.s.Percentile(50).Round(time.Microsecond),
			row.s.Percentile(95).Round(time.Microsecond),
			row.s.Percentile(99).Round(time.Microsecond))
	}
}

func renderCache(w *strings.Builder, cur obs.Snapshot) {
	hits, misses := cur.Counters["sess.cache_hits"], cur.Counters["sess.cache_misses"]
	if hits+misses == 0 {
		return
	}
	fmt.Fprintf(w, "session cache: %d hits / %d misses (%.1f%% hit ratio)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))
}

// renderQoS shows live class rates, per-tenant shares and windowed
// per-tenant throughput with Jain's fairness index over it.
func renderQoS(w *strings.Builder, cur, prev obs.Snapshot, dt time.Duration, first bool) {
	fg, okFG := cur.Gauges["qos.fg_rate_bps"]
	bg, okBG := cur.Gauges["qos.bg_rate_bps"]
	if !okFG && !okBG {
		return
	}
	fmt.Fprintf(w, "qos (cluster aggregate): fg rate %s, bg rate %s\n", fmtBps(fg), fmtBps(bg))
	type tenantRow struct {
		name        string
		share, rate int64
	}
	var rows []tenantRow
	var deltas []float64
	for name, v := range cur.Gauges {
		base, _ := obs.SplitLabeled(name)
		if base != "qos.tenant_bytes" {
			continue
		}
		tn := obs.LabelValue(name, "tenant")
		row := tenantRow{name: tn}
		row.share = cur.Gauges[obs.LabelName("qos.tenant_share_bps", "tenant", tn)]
		if !first && dt > 0 {
			row.rate = int64(float64(v-prev.Gauges[name]) / dt.Seconds())
			deltas = append(deltas, float64(v-prev.Gauges[name]))
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintf(w, "  %-16s %12s %12s\n", "tenant", "share", "rate")
	for _, row := range rows {
		fmt.Fprintf(w, "  %-16s %12s %12s\n", row.name, fmtBps(row.share), fmtBps(row.rate))
	}
	if j, ok := jain(deltas); ok {
		fmt.Fprintf(w, "  Jain fairness over interval: %.3f (1.0 = perfectly fair across %d tenants)\n", j, len(deltas))
	}
}

// jain is Jain's fairness index (Σx)²/(n·Σx²) over active allocations.
func jain(xs []float64) (float64, bool) {
	var sum, sq float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 || math.IsNaN(sq) {
		return 0, false
	}
	return sum * sum / (float64(n) * sq), true
}

func fmtBps(v int64) string {
	switch {
	case v <= 0:
		return "unlimited"
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MB/s", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KB/s", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%d B/s", v)
	}
}

// renderSLO reads the slo.* gauges per node and reports the WORST
// node per objective — summing burn rates across nodes (the merged
// view) would overstate the burn N-fold.
func renderSLO(w *strings.Builder, perNode []obs.Snapshot) {
	type sloAgg struct {
		burning    bool
		fast, slow float64
	}
	aggs := map[string]*sloAgg{}
	var names []string
	for _, snap := range perNode {
		for name, v := range snap.Gauges {
			rest, ok := strings.CutPrefix(name, "slo.")
			if !ok || !strings.HasSuffix(rest, ".burning") {
				continue
			}
			slo := strings.TrimSuffix(rest, ".burning")
			a := aggs[slo]
			if a == nil {
				a = &sloAgg{}
				aggs[slo] = a
				names = append(names, slo)
			}
			if v > 0 {
				a.burning = true
			}
			if f := float64(snap.Gauges["slo."+slo+".fast_burn_milli"]) / 1000; f > a.fast {
				a.fast = f
			}
			if s := float64(snap.Gauges["slo."+slo+".slow_burn_milli"]) / 1000; s > a.slow {
				a.slow = s
			}
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintln(w, "slo (worst node):")
	for _, slo := range names {
		a := aggs[slo]
		state := "ok"
		if a.burning {
			state = "BURNING"
		}
		fmt.Fprintf(w, "  %-16s %-8s burn fast %.2f slow %.2f\n", slo, state, a.fast, a.slow)
	}
}

func renderRepair(w *strings.Builder, cur obs.Snapshot) {
	var busy []string
	for name, v := range cur.Gauges {
		base, _ := obs.SplitLabeled(name)
		if base != "repair.dev_state" || v == 0 {
			continue
		}
		st := map[int64]string{1: "suspect", 2: "degraded", 3: "rebuilding", 4: "resyncing"}[v]
		if st == "" {
			st = strconv.FormatInt(v, 10)
		}
		busy = append(busy, fmt.Sprintf("D%s %s", obs.LabelValue(name, "dev"), st))
	}
	if len(busy) == 0 {
		if _, ok := cur.Gauges["repair.active"]; ok {
			fmt.Fprintln(w, "repair: all devices healthy")
		}
		return
	}
	sort.Strings(busy)
	paused := ""
	if cur.Gauges["repair.paused"] > 0 {
		paused = " [PAUSED]"
	}
	fmt.Fprintf(w, "repair%s: %s (resynced %d KB)\n", paused,
		strings.Join(busy, ", "), cur.Gauges["repair.resync_bytes"]>>10)
}

// renderExemplars surfaces the slowest recent traced observations so
// the operator can jump from a bad p99 straight to its trace.
func renderExemplars(w *strings.Builder, cur, prev obs.Snapshot, dt time.Duration, first bool) {
	type ex struct {
		hist string
		e    obs.Exemplar
	}
	var all []ex
	for name, st := range cur.Histograms {
		if st.Exemplar == nil || st.Exemplar.TraceID == 0 {
			continue
		}
		all = append(all, ex{hist: name, e: *st.Exemplar})
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.Dur > all[j].e.Dur })
	if len(all) > 3 {
		all = all[:3]
	}
	fmt.Fprintln(w, "slow exemplars (drill in with raidxctl trace -id <trace> -addrs ...):")
	for _, x := range all {
		age := time.Since(time.Unix(0, x.e.At)).Round(time.Second)
		fmt.Fprintf(w, "  %-28s %10s  trace %016x  (%s ago)\n",
			x.hist, x.e.Dur.Round(time.Microsecond), x.e.TraceID, age)
	}
}

// runTraceByID assembles one trace from the nodes' span rings — the
// exemplar drill-down path from `raidxctl top`. The client-side root
// lived in the workload's process, so the earliest server-side top span
// stands in as the root.
func runTraceByID(r *rig, idStr string) error {
	id64, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(idStr, "0x"), "0X"), 16, 64)
	if err != nil {
		return fmt.Errorf("bad -id %q (want a hex trace ID): %v", idStr, err)
	}
	tid := trace.TraceID(id64)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var spans []trace.Span
	for i, c := range r.clients {
		if c == nil {
			continue
		}
		sp, err := c.TraceSpans(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raidxctl: warning: node %d spans: %v\n", i, err)
			continue
		}
		for _, s := range sp {
			if s.Trace == tid {
				s.Origin = fmt.Sprintf("n%d", i)
				spans = append(spans, s)
			}
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %016x not found in any node's span ring (rings are bounded — recent traces only)", id64)
	}
	root := spans[0]
	for _, s := range spans {
		if s.Top != root.Top {
			if s.Top {
				root = s
			}
			continue
		}
		if s.Start.Before(root.Start) {
			root = s
		}
	}
	trace.WriteWaterfall(os.Stdout, trace.Trace{ID: tid, Root: root, Spans: spans})
	return nil
}
