package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchResult is one row of the machine-readable results file the global
// -json flag emits. Simulated experiments fill MBps only; the hotpath
// command (real loopback I/O) also reports ns/op and allocs/op, the
// numbers BENCH_*.json tracks across PRs.
type benchResult struct {
	Name        string  `json:"name"`
	MBps        float64 `json:"mb_per_s,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
}

// jsonResults collects every benchmark row the executed command records;
// main writes them out when -json is set.
var jsonResults []benchResult

func record(r benchResult) { jsonResults = append(jsonResults, r) }

func writeJSON(path string) error {
	out, err := json.MarshalIndent(jsonResults, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "raidxbench: %d results written to %s\n", len(jsonResults), path)
	return nil
}
