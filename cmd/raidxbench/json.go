package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchResult is one row of the machine-readable results file the global
// -json flag emits. Simulated experiments fill MBps only; the hotpath
// and scale commands (real loopback I/O) also report ns/op and
// allocs/op — the same schema for both, so BENCH_*.json consumers can
// diff rows across PRs without per-command parsing. Scale rows
// additionally carry the client count, the per-tenant breakdown
// (Tenant set on per-tenant rows), and the Jain fairness index on the
// aggregate row.
type benchResult struct {
	Name        string  `json:"name"`
	MBps        float64 `json:"mb_per_s,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	Tenant      string  `json:"tenant,omitempty"`
	Fairness    float64 `json:"fairness,omitempty"`
}

// jsonResults collects every benchmark row the executed command records;
// main writes them out when -json is set.
var jsonResults []benchResult

func record(r benchResult) { jsonResults = append(jsonResults, r) }

func writeJSON(path string) error {
	out, err := json.MarshalIndent(jsonResults, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "raidxbench: %d results written to %s\n", len(jsonResults), path)
	return nil
}
