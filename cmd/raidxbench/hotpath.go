package main

import (
	"context"
	"flag"
	"fmt"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/store"
)

// runHotpath measures the real I/O stack — core engine over TCP loopback
// to CDD nodes — with the testing package's benchmark driver: ns/op,
// allocs/op, and MB/s for the transfer shapes the zero-copy path is
// tuned for. These are the live counterparts of the `go test -bench`
// numbers recorded in BENCH_*.json; run with the global -json flag to
// emit them machine-readably.
func runHotpath(args []string) error {
	fs := flag.NewFlagSet("hotpath", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "loopback CDD nodes (one disk each)")
	bs := fs.Int("bs", 4096, "block size (bytes)")
	withObs := fs.Bool("obs", false, "attach a client-side obs registry (labeled instruments) and a running 1s time-series sampler, to measure observability overhead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 {
		return fmt.Errorf("hotpath needs >= 2 nodes for OSM mirror groups")
	}

	var devs []raid.Dev
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := 0; i < *nodes; i++ {
		d := disk.New(nil, fmt.Sprintf("n%d.d0", i), store.NewMem(*bs, 4096), disk.DefaultModel())
		n, err := cdd.ListenAndServe("127.0.0.1:0", []*disk.Disk{d})
		if err != nil {
			return err
		}
		c, err := cdd.Connect(n.Addr())
		if err != nil {
			n.Close()
			return err
		}
		closers = append(closers, func() { c.Close(); n.Close() })
		devs = append(devs, c.Devs()...)
	}
	// With -obs, the client engine carries a live registry and a running
	// sampler — the overhead configuration. The node side always carries
	// its manager registry (now including the per-op labeled histograms),
	// so the server-side instrument cost is in both configurations and
	// the A/B delta isolates the client-side + sampler cost.
	var opts core.Options
	suffix := ""
	if *withObs {
		reg := obs.NewRegistry()
		opts.Obs = reg
		sampler := obs.NewSampler(reg, obs.SamplerConfig{})
		sampler.Start()
		defer sampler.Stop()
		suffix = "+obs"
	}
	a, err := core.New(devs, *nodes, 1, opts)
	if err != nil {
		return err
	}
	ctx := context.Background()

	big := make([]byte, 64<<10)
	small := make([]byte, a.BlockSize())
	bigBlocks := int64(len(big) / a.BlockSize())
	cases := []struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}{
		{"write-64k", int64(len(big)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := a.WriteBlocks(ctx, (int64(i)*bigBlocks)%(a.Blocks()-bigBlocks), big); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"read-64k", int64(len(big)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := a.ReadBlocks(ctx, 0, big); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"write-small", int64(len(small)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := a.WriteBlocks(ctx, int64(i)%a.Blocks(), small); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"dev-write-64k", int64(len(big)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := devs[0].WriteBlocks(ctx, 0, big); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"dev-read-64k", int64(len(big)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := devs[0].ReadBlocks(ctx, 0, big); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// Prime the array so reads have data and connections are warm.
	if err := a.WriteBlocks(ctx, 0, big); err != nil {
		return err
	}

	fmt.Printf("Hot path, %d loopback nodes, %d-byte blocks (real TCP + real engine):\n\n", *nodes, *bs)
	fmt.Printf("%-16s %12s %12s %12s\n", "benchmark", "MB/s", "ns/op", "allocs/op")
	for _, c := range cases {
		bytes := c.bytes
		fn := c.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			b.ResetTimer()
			fn(b)
		})
		mbps := float64(bytes) * float64(r.N) / r.T.Seconds() / 1e6
		fmt.Printf("%-16s %12.2f %12d %12d\n", c.name+suffix, mbps, r.NsPerOp(), r.AllocsPerOp())
		record(benchResult{
			Name:        "hotpath/" + c.name + suffix,
			MBps:        mbps,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  bytes,
		})
	}
	return nil
}
