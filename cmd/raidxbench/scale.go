package main

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/qos"
	"repro/internal/store"
	"repro/internal/workload"
)

// runScale is the serving-at-scale story over real TCP: coherent
// client sessions (lock-group-guarded caching + group-commit
// write-back) driven by hundreds to thousands of concurrent clients
// against a loopback CDD node, plus the QoS demonstration that a
// background repair-class stream stays at its configured share while
// foreground traffic storms.
//
// Three phases, all recorded in the -json results (BENCH_PR7.json):
//
//  1. latency probe — remote-read vs cache-hit-read ns/op and
//     allocs/op for one client (rows scale/read-remote,
//     scale/read-cached);
//  2. client sweep — aggregate throughput, allocs/op, and per-tenant
//     fairness as the client count grows (rows scale/clients=N and
//     scale/clients=N/tenant=tK);
//  3. QoS — achieved background bandwidth under a foreground storm
//     vs the configured cap (rows scale/qos-*).
func runScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	clientsFlag := fs.String("clients", "100,500,1000,2000", "client counts to sweep")
	tenants := fs.Int("tenants", 4, "tenant identities the clients are spread over")
	bs := fs.Int("bs", 1024, "block size (bytes)")
	totalOps := fs.Int("totalops", 400000, "total workload ops per sweep point (split across clients, so every point measures the same work and spans several write-back flush cycles)")
	region := fs.Int64("region", 8, "private blocks each client locks exclusively")
	bgCap := fs.Int64("qos-bg-rate", 2<<20, "background QoS cap for phase 3 (bytes/sec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*clientsFlag)
	if err != nil {
		return err
	}

	if err := scaleLatencyProbe(*bs); err != nil {
		return err
	}
	if err := scaleClientSweep(counts, *tenants, *bs, *totalOps, *region); err != nil {
		return err
	}
	return scaleQoS(*bs, *bgCap)
}

// scaleNode starts one loopback node with a single disk and a short
// coherence lease.
func scaleNode(bs int, blocks int64) (*cdd.Node, error) {
	d := disk.New(nil, "scale-d0", store.NewMem(bs, blocks), disk.DefaultModel())
	node, err := cdd.ListenAndServe("127.0.0.1:0", []*disk.Disk{d})
	if err != nil {
		return nil, err
	}
	node.Manager.Locks().SetLease(2*time.Second, nil)
	return node, nil
}

// scaleLatencyProbe measures one client's remote read vs coherent
// cache-hit read and records (and prints) the gap.
func scaleLatencyProbe(bs int) error {
	node, err := scaleNode(bs, 4096)
	if err != nil {
		return err
	}
	defer node.Close()
	c, err := cdd.Connect(node.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	s := cdd.NewSession(c, "probe", cdd.SessionConfig{})
	defer s.Close()
	if err := s.AcquireBlocks(ctx, cdd.Shared, 0, 0, 64); err != nil {
		return err
	}
	dev := s.Dev(0)
	buf := make([]byte, bs)

	// Remote path: the raw RemoteDev, no cache in the way.
	remote := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bs))
		for i := 0; i < b.N; i++ {
			if err := c.Dev(0).ReadBlocks(ctx, 0, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Cached path: populate once, then hit.
	if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
		return err
	}
	cached := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bs))
		for i := 0; i < b.N; i++ {
			if err := dev.ReadBlocks(ctx, 0, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	rNs := float64(remote.NsPerOp())
	cNs := float64(cached.NsPerOp())
	ratio := rNs / cNs
	fmt.Printf("Latency probe (block %d B):\n", bs)
	fmt.Printf("  %-14s %10.0f ns/op %8.1f allocs/op\n", "remote read", rNs, float64(remote.AllocsPerOp()))
	fmt.Printf("  %-14s %10.0f ns/op %8.1f allocs/op\n", "cached read", cNs, float64(cached.AllocsPerOp()))
	fmt.Printf("  %-14s %10.1fx\n", "speedup", ratio)
	record(benchResult{Name: "scale/read-remote", NsPerOp: rNs,
		AllocsPerOp: float64(remote.AllocsPerOp()), BytesPerOp: int64(bs),
		MBps: float64(bs) / 1e6 / (rNs / 1e9)})
	record(benchResult{Name: "scale/read-cached", NsPerOp: cNs,
		AllocsPerOp: float64(cached.AllocsPerOp()), BytesPerOp: int64(bs),
		MBps: float64(bs) / 1e6 / (cNs / 1e9)})
	if ratio < 10 {
		fmt.Printf("  WARNING: cache-hit speedup %.1fx below the 10x target\n", ratio)
	}
	return nil
}

// scaleClientSweep drives count concurrent coherent sessions per sweep
// point, each over its own TCP connection, and records aggregate
// throughput plus per-tenant shares.
func scaleClientSweep(counts []int, tenants, bs, totalOps int, region int64) error {
	fmt.Printf("\nClient sweep (%d tenants, %d total ops/point, %d-block exclusive regions):\n", tenants, totalOps, region)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "clients", "MB/s", "ops/s", "allocs/op", "fairness")
	var prevMBps float64
	for idx, count := range counts {
		node, err := scaleNode(bs, int64(count)*region+64)
		if err != nil {
			return err
		}
		// A long lease keeps heartbeat chatter from thousands of sessions
		// well below the foreground op rate: a 1 s beat against a 10 s
		// lease stays comfortably inside the client's ttl/2 freshness rule.
		node.Manager.Locks().SetLease(10*time.Second, nil)
		// A generous per-attempt deadline: bringing up thousands of
		// connections on a small box makes individual setup RPCs stall
		// behind GC and the accept storm, and a spurious 2 s cutoff there
		// aborts the sweep without measuring anything.
		pol := cdd.DefaultRetryPolicy()
		pol.CallTimeout = 15 * time.Second
		clients := make([]*cdd.NodeClient, count)
		sessions := make([]*cdd.Session, count)
		for i := 0; i < count; i++ {
			c, err := cdd.ConnectWith(context.Background(), node.Addr(), cdd.Options{Retry: pol})
			if err != nil {
				return fmt.Errorf("client %d: %w", i, err)
			}
			clients[i] = c
			sessions[i] = cdd.NewSession(c, fmt.Sprintf("scale-%d", i), cdd.SessionConfig{
				CacheBytes:   32 << 10,
				Beat:         time.Second,
				WriteBackAge: 250 * time.Millisecond,
			})
		}
		ctx := context.Background()

		runner := workload.Runner{
			Clients:    count,
			Tenants:    tenants,
			Cfg:        workload.Config{ReadFraction: 0.7, WorkingSetBlocks: region, HotSkew: 0.9, MaxOpBlocks: 1, Ops: opsFor(totalOps, count)},
			Seed:       42,
			BlockBytes: bs,
		}
		// Per-client op buffers and cached dev handles, allocated outside
		// the measured window so the sweep reports steady-state allocs.
		devs := make([]*cdd.CachedDev, count)
		bufs := make([][]byte, count)
		for i := range devs {
			devs[i] = sessions[i].Dev(0)
			bufs[i] = make([]byte, bs)
		}
		// Acquire each client's exclusive grant and warm its cache and
		// write-back structures, then flush, so each sweep point measures
		// steady-state serving. Without the warmup, points with fewer ops
		// per client spend a larger fraction of the window on first-touch
		// remote reads and the sweep conflates miss ratio with client
		// count. Setup runs concurrently with a retry: a single lock RPC
		// can exceed its call deadline when thousands of connections are
		// being brought up on a loaded box, and setup hiccups must not
		// abort the sweep.
		warmErr := make(chan error, count)
		for i := 0; i < count; i++ {
			go func(i int) {
				base := int64(i) * region
				var err error
				for attempt := 0; attempt < 3; attempt++ {
					if err = sessions[i].AcquireBlocks(ctx, cdd.Exclusive, 0, base, region); err == nil {
						break
					}
				}
				if err != nil {
					warmErr <- fmt.Errorf("client %d grant: %w", i, err)
					return
				}
				buf := make([]byte, int(region)*bs)
				if err := devs[i].ReadBlocks(ctx, base, buf); err != nil {
					warmErr <- fmt.Errorf("client %d warm read: %w", i, err)
					return
				}
				if err := devs[i].WriteBlocks(ctx, base, buf); err != nil {
					warmErr <- fmt.Errorf("client %d warm write: %w", i, err)
					return
				}
				warmErr <- sessions[i].Flush(ctx)
			}(i)
		}
		var warmFail error
		for i := 0; i < count; i++ {
			if err := <-warmErr; err != nil && warmFail == nil {
				warmFail = err
			}
		}
		if warmFail != nil {
			return warmFail
		}
		runtime.GC() // drain setup garbage before the measured run
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		res := runner.Run(ctx, func(ctx context.Context, client int, _ string, op workload.Op) error {
			base := int64(client) * region
			buf := bufs[client][:int(op.Blocks)*bs]
			if op.Read {
				return devs[client].ReadBlocks(ctx, base+op.Block, buf)
			}
			return devs[client].WriteBlocks(ctx, base+op.Block, buf)
		})
		runtime.ReadMemStats(&ms1)
		for _, s := range sessions {
			s.Close()
		}
		for _, c := range clients {
			c.Close()
		}
		node.Close()

		if res.Errs > 0 {
			return fmt.Errorf("clients=%d: %d workload errors", count, res.Errs)
		}
		allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
		var names []string
		for tn := range res.Tenants {
			names = append(names, tn)
		}
		sort.Strings(names)
		shares := make([]float64, 0, len(names))
		for _, tn := range names {
			shares = append(shares, float64(res.Tenants[tn].Bytes))
		}
		jain := workload.JainIndex(shares)
		opsPerSec := float64(res.Ops) / res.Elapsed.Seconds()
		fmt.Printf("%-10d %12.2f %12.0f %12.1f %10.3f\n", count, res.MBps(), opsPerSec, allocsPerOp, jain)
		record(benchResult{
			Name:        fmt.Sprintf("scale/clients=%d", count),
			Clients:     count,
			MBps:        res.MBps(),
			NsPerOp:     res.Elapsed.Seconds() / float64(res.Ops) * 1e9,
			AllocsPerOp: allocsPerOp,
			BytesPerOp:  res.Bytes / res.Ops,
			Fairness:    jain,
		})
		for _, tn := range names {
			ts := res.Tenants[tn]
			record(benchResult{
				Name:    fmt.Sprintf("scale/clients=%d/tenant=%s", count, tn),
				Clients: count,
				Tenant:  tn,
				MBps:    float64(ts.Bytes) / 1e6 / res.Elapsed.Seconds(),
			})
		}
		if idx > 0 && res.MBps() < 0.5*prevMBps {
			fmt.Printf("  WARNING: throughput collapsed at %d clients (%.2f -> %.2f MB/s)\n",
				count, prevMBps, res.MBps())
		}
		prevMBps = res.MBps()
		// Drain the point's connections and caches from the heap so the
		// next point's setup does not fight the collector for the CPU.
		runtime.GC()
	}
	return nil
}

// scaleQoS storms the node with foreground readers while a
// background repair-class stream runs through the admission scheduler,
// and reports the background share against its cap.
func scaleQoS(bs int, bgCap int64) error {
	node, err := scaleNode(bs, 8192)
	if err != nil {
		return err
	}
	defer node.Close()
	sched := qos.New(qos.Config{BackgroundBytesPerSec: bgCap, BurstWindow: 20 * time.Millisecond})
	pace := sched.Pace(qos.Background, "repair")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	const fgWorkers = 8
	type tally struct{ bytes int64 }
	fg := make([]tally, fgWorkers)
	var bg tally
	done := make(chan struct{})
	start := time.Now()
	// Foreground storm: unthrottled readers.
	for w := 0; w < fgWorkers; w++ {
		go func(w int) {
			c, err := cdd.Connect(node.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			buf := make([]byte, 16*bs)
			for ctx.Err() == nil {
				if c.Dev(0).ReadBlocks(ctx, int64(w)*64, buf) != nil {
					return
				}
				fg[w].bytes += int64(len(buf))
			}
		}(w)
	}
	// Background "repair" stream: bulk reads paced through the
	// scheduler — exactly what repair.Config.Pace does in raidxnode.
	go func() {
		defer close(done)
		c, err := cdd.Connect(node.Addr())
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64*bs)
		var blk int64
		for ctx.Err() == nil {
			if pace(ctx, len(buf)) != nil {
				return
			}
			if c.Dev(0).ReadBlocks(ctx, blk%4096, buf) != nil {
				return
			}
			bg.bytes += int64(len(buf))
			blk += 64
		}
	}()
	<-done
	elapsed := time.Since(start).Seconds()

	var fgBytes int64
	for w := range fg {
		fgBytes += fg[w].bytes
	}
	fgMBps := float64(fgBytes) / 1e6 / elapsed
	bgMBps := float64(bg.bytes) / 1e6 / elapsed
	capMBps := float64(bgCap) / 1e6
	fmt.Printf("\nQoS under foreground storm (%d workers, background cap %.2f MB/s):\n", fgWorkers, capMBps)
	fmt.Printf("  %-18s %10.2f MB/s\n", "foreground", fgMBps)
	fmt.Printf("  %-18s %10.2f MB/s (cap %.2f)\n", "background", bgMBps, capMBps)
	record(benchResult{Name: "scale/qos-foreground", MBps: fgMBps})
	record(benchResult{Name: "scale/qos-background", MBps: bgMBps})
	record(benchResult{Name: "scale/qos-background-cap", MBps: capMBps})
	if bgMBps > 1.3*capMBps {
		fmt.Printf("  WARNING: background exceeded its cap (%.2f > %.2f MB/s)\n", bgMBps, capMBps)
	}
	return nil
}

// opsFor splits the per-point op budget across clients (at least one
// op each).
func opsFor(total, clients int) int {
	per := total / clients
	if per < 1 {
		per = 1
	}
	return per
}
