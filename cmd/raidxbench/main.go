// Command raidxbench regenerates every table and figure of the paper's
// evaluation section on the simulated Trojans cluster:
//
//	raidxbench table2   — analytic expected peak performance (Table 2)
//	raidxbench fig5     — aggregate I/O bandwidth vs clients (Figure 5)
//	raidxbench table3   — 1-vs-N client bandwidth + improvement (Table 3)
//	raidxbench fig6     — Andrew benchmark elapsed times (Figure 6)
//	raidxbench fig7     — striped/staggered checkpointing (Figure 7)
//	raidxbench summary  — the Section 7 headline claims, measured
//	raidxbench ablate   — design-choice ablations (DESIGN.md Section 5)
//
// All runs are deterministic; -nodes/-disks/-clients scale the sweep.
//
// The global -pprof flag (before the command) writes a CPU profile of
// the whole run: raidxbench -pprof bench.prof fig5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	// Global flags come before the command word (per-command FlagSets
	// own everything after it).
	global := flag.NewFlagSet("raidxbench", flag.ExitOnError)
	global.Usage = usage
	pprofOut := global.String("pprof", "", "write a CPU profile of the whole run to this file")
	jsonOut := global.String("json", "", "write machine-readable results (MB/s, allocs/op, ns/op) to this file")
	global.Parse(os.Args[1:])
	if global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	stopProf := func() {}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			log.Fatalf("raidxbench: -pprof: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("raidxbench: -pprof: %v", err)
		}
		stopProf = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("raidxbench: -pprof: %v", err)
			}
			fmt.Fprintf(os.Stderr, "raidxbench: CPU profile written to %s\n", *pprofOut)
		}
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	var err error
	switch cmd {
	case "scale":
		err = runScale(args)
	case "scale-sim":
		err = runScaleSim(args)
	case "all":
		err = runAll(args)
	case "table2":
		err = runTable2(args)
	case "fig5":
		err = runFig5(args)
	case "table3":
		err = runTable3(args)
	case "fig6":
		err = runFig6(args)
	case "fig7":
		err = runFig7(args)
	case "summary":
		err = runSummary(args)
	case "degraded":
		err = runDegraded(args)
	case "txn":
		err = runTxn(args)
	case "reliability":
		err = runReliability(args)
	case "ablate":
		err = runAblate(args)
	case "hotpath":
		err = runHotpath(args)
	case "rebalance":
		err = runRebalance(args)
	case "parity":
		err = runParity(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "raidxbench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raidxbench:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "raidxbench: -json:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: raidxbench <all|scale|scale-sim|hotpath|parity|rebalance|table2|fig5|table3|fig6|fig7|summary|txn|degraded|reliability|ablate> [flags]
Run 'raidxbench <cmd> -h' for per-command flags.
Global flags (before the command): -pprof <file>, -json <file>.
The scale command drives coherent client sessions over real TCP:
  raidxbench -json BENCH_PR7.json scale -clients 100,500,1000,2000 -tenants 4`)
}

// clusterFlags registers the shared testbed flags.
func clusterFlags(fs *flag.FlagSet) *cluster.Params {
	p := cluster.DefaultParams()
	fs.IntVar(&p.Nodes, "nodes", p.Nodes, "cluster nodes")
	fs.IntVar(&p.DisksPerNode, "disks", p.DisksPerNode, "disks per node")
	fs.Int64Var(&p.DiskBlocks, "diskblocks", p.DiskBlocks, "blocks per disk")
	fs.IntVar(&p.BlockSize, "bs", p.BlockSize, "block size (bytes)")
	return &p
}

// parseInts parses "1,2,4" lists.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseSystems parses "nfs,raid5,..." lists.
func parseSystems(s string) ([]bench.System, error) {
	if s == "all" {
		return bench.AllSystems(), nil
	}
	if s == "paper" {
		return bench.PaperSystems(), nil
	}
	known := map[string]bool{}
	for _, sys := range bench.AllSystems() {
		known[string(sys)] = true
	}
	var out []bench.System
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if !known[f] {
			return nil, fmt.Errorf("unknown system %q", f)
		}
		out = append(out, bench.System(f))
	}
	return out, nil
}
