package main

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/parity"
)

// runParity measures the internal/parity kernels in isolation: the
// word-parallel XOR against the byte-at-a-time loop it replaced, the
// GF(2^8) multiply-accumulate, and Reed-Solomon encode/reconstruct for
// the stripe geometries the rs engine ships. Every number is best-of-N
// (default 3) so a background scheduler blip can't understate a
// kernel; the byte-loop row doubles as the recorded "before" baseline
// in BENCH_PR9.json.
func runParity(args []string) error {
	fs := flag.NewFlagSet("parity", flag.ExitOnError)
	size := fs.Int("size", 64<<10, "buffer/shard size in bytes")
	best := fs.Int("best", 3, "take the best of this many runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *size < 1 || *best < 1 {
		return fmt.Errorf("parity: -size and -best must be >= 1")
	}

	fmt.Printf("Parity kernels (%s path), %d-byte buffers, best of %d:\n\n",
		parity.KernelName(), *size, *best)
	fmt.Printf("%-22s %12s %12s %12s\n", "benchmark", "MB/s", "ns/op", "allocs/op")

	dst := make([]byte, *size)
	src := make([]byte, *size)
	for i := range src {
		src[i] = byte(i * 131)
	}
	cases := []struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}{
		{"xor-bytewise", int64(*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parity.XorIntoBytewise(dst, src)
			}
		}},
		{"xor-kernel", int64(*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parity.XorInto(dst, src)
			}
		}},
		{"galmulxor", int64(*size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parity.GalMulXor(dst, src, 0x57)
			}
		}},
	}
	for _, g := range []struct{ k, m int }{{4, 1}, {8, 2}, {10, 4}} {
		g := g
		rs, err := parity.NewRS(g.k, g.m)
		if err != nil {
			return err
		}
		data := make([][]byte, g.k)
		par := make([][]byte, g.m)
		for i := range data {
			data[i] = make([]byte, *size)
			for j := range data[i] {
				data[i][j] = byte(i + j*17)
			}
		}
		for i := range par {
			par[i] = make([]byte, *size)
		}
		cases = append(cases, struct {
			name  string
			bytes int64
			fn    func(b *testing.B)
		}{fmt.Sprintf("rs-encode-%dx%d", g.k, g.m), int64(g.k * *size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rs.Encode(data, par); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	// Reconstruct two missing data shards of rs(8,2) — the worst-case
	// repair the engine performs on a double-degraded read.
	{
		rs, err := parity.NewRS(8, 2)
		if err != nil {
			return err
		}
		shards := make([][]byte, 10)
		present := make([]bool, 10)
		for i := range shards {
			shards[i] = make([]byte, *size)
			present[i] = true
		}
		for i := 0; i < 8; i++ {
			for j := range shards[i] {
				shards[i][j] = byte(i ^ j)
			}
		}
		if err := rs.Encode(shards[:8], shards[8:]); err != nil {
			return err
		}
		cases = append(cases, struct {
			name  string
			bytes int64
			fn    func(b *testing.B)
		}{"rs-reconstruct-8x2", int64(2 * *size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				present[1], present[5] = false, false
				if err := rs.Reconstruct(shards, present); err != nil {
					b.Fatal(err)
				}
				present[1], present[5] = true, true
			}
		}})
	}

	for _, c := range cases {
		bytes := c.bytes
		fn := c.fn
		var bestRes testing.BenchmarkResult
		var bestMBps float64
		for run := 0; run < *best; run++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(bytes)
				b.ResetTimer()
				fn(b)
			})
			mbps := float64(bytes) * float64(r.N) / r.T.Seconds() / 1e6
			if mbps > bestMBps {
				bestMBps, bestRes = mbps, r
			}
		}
		fmt.Printf("%-22s %12.0f %12d %12d\n", c.name, bestMBps, bestRes.NsPerOp(), bestRes.AllocsPerOp())
		record(benchResult{
			Name:        "parity/" + c.name,
			MBps:        bestMBps,
			NsPerOp:     float64(bestRes.NsPerOp()),
			AllocsPerOp: float64(bestRes.AllocsPerOp()),
			BytesPerOp:  bytes,
		})
	}
	return nil
}
