package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/andrew"
	"repro/internal/bench"
	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/reliab"
	"repro/internal/workload"
)

func runTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	n := fs.Int("n", 12, "disks in the array")
	b := fs.Float64("B", 10, "per-disk bandwidth (MB/s)")
	m := fs.Int64("m", 64, "file length (blocks)")
	rms := fs.Float64("R", 13, "single-block read time (ms)")
	wms := fs.Float64("W", 13, "single-block write time (ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := analytic.Inputs{
		N: *n, B: *b, M: *m,
		R: time.Duration(*rms * float64(time.Millisecond)),
		W: time.Duration(*wms * float64(time.Millisecond)),
	}
	rows := analytic.Table2(in)
	fmt.Printf("Table 2 — expected peak performance (n=%d, B=%.0f MB/s, m=%d blocks, R=%v, W=%v)\n\n",
		in.N, in.B, in.M, in.R, in.W)
	fmt.Printf("%-16s", "metric")
	for _, r := range rows {
		fmt.Printf(" %-22s", r.Arch)
	}
	fmt.Println()
	for _, metric := range []string{"read-bw", "large-write-bw", "small-write-bw", "large-read", "small-read", "large-write", "small-write"} {
		fmt.Printf("%-16s", metric)
		for _, r := range rows {
			var val string
			switch metric {
			case "read-bw":
				val = fmt.Sprintf("%.0f MB/s", r.ReadBW)
			case "large-write-bw":
				val = fmt.Sprintf("%.0f MB/s", r.LargeWriteBW)
			case "small-write-bw":
				val = fmt.Sprintf("%.0f MB/s", r.SmallWriteBW)
			case "large-read":
				val = r.LargeRead.Round(100 * time.Microsecond).String()
			case "small-read":
				val = r.SmallRead.String()
			case "large-write":
				val = r.LargeWrite.Round(100 * time.Microsecond).String()
			case "small-write":
				val = r.SmallWrite.String()
			}
			fmt.Printf(" %-10s=%-11s", r.Formulas[metric], val)
		}
		fmt.Println()
	}
	fmt.Println("\nfault coverage:")
	for _, r := range rows {
		fmt.Printf("  %-8s %s\n", r.Arch, r.FaultCoverage)
	}
	fmt.Printf("\nRAID-x : RAID-5 small-write advantage (model): %.1fx\n", analytic.SmallWriteAdvantage(in))
	fmt.Printf("RAID-x : chained large-write improvement (model, -> 2 for large n): %.2fx\n", analytic.ChainedWriteImprovement(in))
	return nil
}

func runFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	p := clusterFlags(fs)
	clientsFlag := fs.String("clients", "1,2,4,6,8,10,12", "client counts")
	systemsFlag := fs.String("systems", "paper", "systems (paper|all|csv)")
	mb := fs.Int("filemb", 2, "large file size per client (MB)")
	smallOps := fs.Int("smallops", 16, "small accesses per client")
	verbose := fs.Bool("verbose", false, "print the bottleneck resource of each cell")
	csvPath := fs.String("csv", "", "also write results as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clients, err := parseInts(*clientsFlag)
	if err != nil {
		return err
	}
	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		return err
	}
	cfg := bench.Config{LargeBytes: *mb << 20, SmallOps: *smallOps}
	var csvRows []string
	for _, pattern := range bench.Patterns() {
		fmt.Printf("\nFigure 5 (%s) — aggregate bandwidth (MB/s) on %dx%d cluster\n", pattern, p.Nodes, p.DisksPerNode)
		fmt.Printf("%-10s", "clients")
		for _, m := range clients {
			fmt.Printf(" %8d", m)
		}
		fmt.Println()
		for _, sys := range systems {
			fmt.Printf("%-10s", sys)
			var hot []string
			for _, m := range clients {
				r, err := bench.Bandwidth(*p, sys, pattern, m, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s/%d: %w", sys, pattern, m, err)
				}
				fmt.Printf(" %8.2f", r.MBps)
				hot = append(hot, fmt.Sprintf("%s@%.0f%%", r.Bottleneck, r.BottleneckUtil*100))
				csvRows = append(csvRows, fmt.Sprintf("%s,%s,%d,%.3f", pattern, sys, m, r.MBps))
				record(benchResult{Name: fmt.Sprintf("fig5/%s/%s/%d", pattern, sys, m), MBps: r.MBps})
			}
			fmt.Println()
			if *verbose {
				fmt.Printf("%10s bottleneck: %v\n", "", hot)
			}
		}
	}
	if *csvPath != "" {
		out := "pattern,system,clients,mbps\n" + strings.Join(csvRows, "\n") + "\n"
		if err := os.WriteFile(*csvPath, []byte(out), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
	return nil
}

func runTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	p := clusterFlags(fs)
	clients := fs.Int("clients", 12, "many-client count")
	systemsFlag := fs.String("systems", "paper", "systems (paper|all|csv)")
	mb := fs.Int("filemb", 2, "large file size per client (MB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		return err
	}
	cfg := bench.Config{LargeBytes: *mb << 20, SmallOps: 16}
	rows, err := bench.Table3(*p, systems, *clients, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Table 3 — achievable bandwidth and improvement factor (%d clients)\n\n", *clients)
	fmt.Printf("%-10s %-12s %12s %12s %10s\n", "system", "operation", "1 client", fmt.Sprintf("%d clients", *clients), "improve")
	for _, r := range rows {
		fmt.Printf("%-10s %-12s %9.2f MB/s %9.2f MB/s %9.2fx\n",
			r.System, r.Pattern, r.OneClient, r.ManyClients, r.Improvement)
	}
	return nil
}

func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	p := clusterFlags(fs)
	clientsFlag := fs.String("clients", "1,4,8,16,24,32", "client counts")
	systemsFlag := fs.String("systems", "paper", "systems (paper|all|csv)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clients, err := parseInts(*clientsFlag)
	if err != nil {
		return err
	}
	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		return err
	}
	cfg := andrew.DefaultConfig()
	for _, sys := range systems {
		fmt.Printf("\nFigure 6 (%s) — Andrew benchmark elapsed time (s)\n", sys)
		fmt.Printf("%-10s %8s %8s %8s %8s %8s %9s\n", "clients", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "total")
		for _, m := range clients {
			r, err := bench.RunAndrew(*p, sys, m, cfg)
			if err != nil {
				return fmt.Errorf("%s/%d: %w", sys, m, err)
			}
			fmt.Printf("%-10d %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f\n", m,
				r.Phase["MakeDir"].Seconds(), r.Phase["Copy"].Seconds(), r.Phase["ScanDir"].Seconds(),
				r.Phase["ReadAll"].Seconds(), r.Phase["Make"].Seconds(), r.Total.Seconds())
		}
	}
	return nil
}

func runFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	p := clusterFlags(fs)
	procs := fs.Int("procs", 12, "checkpointing processes")
	slots := fs.Int("slots", 3, "staggering depth (slots)")
	mb := fs.Int("imagemb", 2, "checkpoint image size (MB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := chkpt.Config{Processes: *procs, ImageBytes: *mb << 20, Slots: *slots, LocalImages: true}
	rs, err := bench.Figure7(*p, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7 — coordinated checkpointing, %d processes, %d MB images, %d slots\n", *procs, *mb, *slots)
	fmt.Println("(C = per-process checkpoint overhead, S = synchronization overhead)")
	for _, r := range rs {
		fmt.Println(" ", r)
		if len(r.SlotEnds) > 0 {
			fmt.Print("    slot timeline:")
			for i, e := range r.SlotEnds {
				fmt.Printf(" slot%d@%.0fms", i, e.Seconds()*1e3)
			}
			fmt.Println()
		}
	}
	transient, permanent, err := bench.RecoveryComparison(*p, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nTwo-level recovery of one %d MB checkpoint (one data disk failed):\n", *mb)
	fmt.Printf("  transient (local mirror images, no network): %v\n", transient.Round(time.Millisecond))
	fmt.Printf("  permanent (striped read, degraded):          %v\n", permanent.Round(time.Millisecond))
	return nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	p := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.DefaultConfig()
	clients := p.Nodes

	get := func(sys bench.System, pat bench.Pattern) float64 {
		r, err := bench.Bandwidth(*p, sys, pat, clients, cfg)
		if err != nil {
			panic(err)
		}
		return r.MBps
	}
	fmt.Printf("Section 7 headline claims, measured on the %d-node simulated cluster:\n\n", p.Nodes)
	xr, r5r, nr := get(bench.RAIDx, bench.LargeRead), get(bench.RAID5, bench.LargeRead), get(bench.NFS, bench.LargeRead)
	fmt.Printf("parallel reads, %d clients: raidx %.1f MB/s = %.2fx raid5 (paper ~1.5x), %.2fx nfs (paper ~3.7x)\n",
		clients, xr, xr/r5r, xr/nr)
	xw, r5w := get(bench.RAIDx, bench.SmallWrite), get(bench.RAID5, bench.SmallWrite)
	fmt.Printf("small writes,  %d clients: raidx %.1f MB/s = %.2fx raid5 (paper ~3x)\n", clients, xw, xw/r5w)

	acfg := andrew.DefaultConfig()
	ax, err := bench.RunAndrew(*p, bench.RAIDx, clients, acfg)
	if err != nil {
		return err
	}
	a5, err := bench.RunAndrew(*p, bench.RAID5, clients, acfg)
	if err != nil {
		return err
	}
	a10, err := bench.RunAndrew(*p, bench.RAID10, clients, acfg)
	if err != nil {
		return err
	}
	fmt.Printf("Andrew, %d clients: raidx %.0fs vs raid5 %.0fs (%.0f%% faster; paper 7-27%%), vs raid10 %.0fs (%.0f%% faster)\n",
		clients, ax.Total.Seconds(), a5.Total.Seconds(), 100*(1-ax.Total.Seconds()/a5.Total.Seconds()),
		a10.Total.Seconds(), 100*(1-ax.Total.Seconds()/a10.Total.Seconds()))
	return nil
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	p := clusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.DefaultConfig()
	clients := p.Nodes

	fmt.Println("Ablation 1 — background vs foreground mirror writes (large write, MB/s):")
	for _, opt := range []struct {
		name string
		o    core.Options
	}{
		{"background (paper)", core.Options{}},
		{"foreground", core.Options{ForegroundMirror: true}},
	} {
		r, err := bench.BandwidthOpt(*p, bench.RAIDx, bench.LargeWrite, clients, cfg, opt.o)
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s %7.2f MB/s\n", opt.name, r.MBps)
	}

	fmt.Println("\nAblation 2 — gathered mirror groups vs per-block images")
	fmt.Println("(large write; client-visible MB/s and time-to-full-redundancy MB/s):")
	flushCfg := cfg
	flushCfg.FlushTimed = true
	for _, opt := range []struct {
		name string
		o    core.Options
	}{
		{"gathered (paper)", core.Options{}},
		{"scattered", core.Options{ScatterMirror: true}},
		{"scattered+foreground", core.Options{ScatterMirror: true, ForegroundMirror: true}},
	} {
		r, err := bench.BandwidthOpt(*p, bench.RAIDx, bench.LargeWrite, clients, cfg, opt.o)
		if err != nil {
			return err
		}
		rf, err := bench.BandwidthOpt(*p, bench.RAIDx, bench.LargeWrite, clients, flushCfg, opt.o)
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s %7.2f MB/s visible, %7.2f MB/s to-redundancy\n", opt.name, r.MBps, rf.MBps)
	}

	fmt.Println("\nAblation 3 — parallelism n vs pipelining k at fixed n*k=12 disks (large write, MB/s):")
	for _, geo := range []struct{ n, k int }{{12, 1}, {6, 2}, {4, 3}, {3, 4}, {2, 6}} {
		pp := *p
		pp.Nodes, pp.DisksPerNode = geo.n, geo.k
		r, err := bench.Bandwidth(pp, bench.RAIDx, bench.LargeWrite, geo.n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %2dx%d  %7.2f MB/s (%d clients)\n", geo.n, geo.k, r.MBps, geo.n)
	}

	fmt.Println("\nAblation 4 — staggering depth (striped-staggered checkpoint, 12 procs, 2MB images):")
	for _, slots := range []int{1, 2, 3, 4, 6, 12} {
		ccfg := chkpt.Config{Processes: 12, ImageBytes: 2 << 20, Slots: slots, LocalImages: true}
		r, err := bench.RunCheckpoint(*p, chkpt.StripedStaggered, ccfg)
		if err != nil {
			return err
		}
		fmt.Printf("  slots=%-2d makespan=%7.1fms  C(max)=%7.1fms  S(max)=%7.1fms\n",
			slots, r.Makespan.Seconds()*1e3, r.MaxWrite.Seconds()*1e3, r.MaxSync.Seconds()*1e3)
	}

	fmt.Println("\nAblation 5 — lock-group granularity (Andrew Copy phase, RAID-x,")
	fmt.Printf("%d clients; FS allocation groups = independent lock groups):\n", clients)
	for _, groups := range []int{1, 4, 16} {
		acfg := andrew.DefaultConfig()
		r, err := bench.RunAndrewOpts(*p, bench.RAIDx, clients, acfg, bench.AndrewOpts{FSGroups: groups})
		if err != nil {
			return err
		}
		fmt.Printf("  groups=%-3d total=%7.1fs  copy=%6.1fs\n", groups, r.Total.Seconds(), r.Phase["Copy"].Seconds())
	}

	fmt.Println("\nAblation 6 — load-balanced reads (Section 7 extension; small reads")
	fmt.Println("while half the cluster streams large writes):")
	for _, opt := range []struct {
		name string
		o    core.Options
	}{
		{"primary-only", core.Options{}},
		{"balanced", core.Options{BalanceReads: true}},
	} {
		r, err := bench.MixedReadWrite(*p, opt.o, clients/2, clients/2, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s reader bandwidth %6.2f MB/s (read makespan %v)\n",
			opt.name, r.ReadMBps, r.ReadMakespan.Round(time.Millisecond))
	}
	return nil
}

func runReliability(args []string) error {
	fs := flag.NewFlagSet("reliability", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes (n)")
	disks := fs.Int("disks", 3, "disks per node (k)")
	mttfH := fs.Float64("mttf", 10000, "per-disk mean time to failure (hours)")
	mttrH := fs.Float64("mttr", 10, "rebuild/repair time (hours)")
	trials := fs.Int("trials", 300, "Monte Carlo trials")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mttf := time.Duration(*mttfH * float64(time.Hour))
	mttr := time.Duration(*mttrH * float64(time.Hour))
	fmt.Printf("Reliability (Table 2 fault coverage, quantified): %dx%d array,\n", *nodes, *disks)
	fmt.Printf("disk MTTF %.0fh, rebuild %.0fh, %d Monte Carlo trials over exact fatal-pair sets\n\n",
		*mttfH, *mttrH, *trials)
	for _, r := range reliab.Compare(*nodes, *disks, 256, mttf, mttr, *trials) {
		fmt.Println(" ", r)
	}
	fmt.Println("\nSame-node disk pairs are never fatal for RAID-x (orthogonality), so")
	fmt.Println("deeper n-by-k arrays tolerate whole-node failures that flat mirroring cannot.")
	return nil
}

func runTxn(args []string) error {
	fs := flag.NewFlagSet("txn", flag.ExitOnError)
	p := clusterFlags(fs)
	clients := fs.Int("clients", 12, "concurrent clients")
	mix := fs.String("mix", "oltp", "workload mix: oltp | mining")
	ops := fs.Int("ops", 64, "operations per client")
	systemsFlag := fs.String("systems", "paper", "systems (paper|all|csv)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		return err
	}
	workingSet := p.DiskBlocks * int64(p.Nodes*p.DisksPerNode) / 4
	var cfg workload.Config
	switch *mix {
	case "oltp":
		cfg = workload.OLTP(workingSet)
	case "mining":
		cfg = workload.Mining(workingSet)
	default:
		return fmt.Errorf("unknown mix %q", *mix)
	}
	cfg.Ops = *ops
	fmt.Printf("Transactional mixed workload (%s: %.0f%% reads, skew %.1f, <=%d-block ops),\n",
		*mix, cfg.ReadFraction*100, cfg.HotSkew, cfg.MaxOpBlocks)
	fmt.Printf("%d clients x %d ops over a shared %d-block working set:\n\n", *clients, cfg.Ops, cfg.WorkingSetBlocks)
	for _, sys := range systems {
		r, err := bench.Transactions(*p, sys, *clients, cfg)
		if err != nil {
			return err
		}
		fmt.Println(" ", r)
	}
	return nil
}

func runDegraded(args []string) error {
	fs := flag.NewFlagSet("degraded", flag.ExitOnError)
	p := clusterFlags(fs)
	clients := fs.Int("clients", 8, "concurrent reader clients")
	systemsFlag := fs.String("systems", "raid5,raid10,chained,raidx", "systems (csv)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		return err
	}
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	fmt.Printf("Degraded-mode performance: %d clients reading 2 MB files; large-read MB/s\n", *clients)
	fmt.Printf("%-10s %10s %10s %12s %14s\n", "system", "normal", "degraded", "rebuilding", "rebuild time")
	for _, sys := range systems {
		rs, err := bench.DegradedSweep(*p, sys, *clients, cfg)
		if err != nil {
			return err
		}
		byState := map[bench.ArrayState]bench.DegradedResult{}
		for _, r := range rs {
			byState[r.State] = r
		}
		fmt.Printf("%-10s %10.2f %10.2f %12.2f %14v\n", sys,
			byState[bench.StateNormal].MBps,
			byState[bench.StateDegraded].MBps,
			byState[bench.StateRebuilding].MBps,
			byState[bench.StateRebuilding].RebuildTime.Round(time.Millisecond))
	}
	return nil
}

// runAll sequences every experiment at moderate scale — one command to
// regenerate the whole evaluation (redirect to a file for a report).
func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("# RAID-x reproduction — full experiment run")
	fmt.Println()
	steps := []struct {
		name string
		run  func([]string) error
		args []string
	}{
		{"Table 2 (analytic)", runTable2, nil},
		{"Figure 5 (bandwidth)", runFig5, []string{"-clients", "1,4,8,12"}},
		{"Table 3 (improvement)", runTable3, nil},
		{"Figure 6 (Andrew)", runFig6, []string{"-clients", "1,8,16,32"}},
		{"Figure 7 (checkpointing)", runFig7, nil},
		{"Headline summary", runSummary, nil},
		{"Degraded / rebuild", runDegraded, nil},
		{"Transactions (OLTP)", runTxn, []string{"-clients", "12"}},
		{"Reliability (MTTDL)", runReliability, nil},
		{"Ablations", runAblate, nil},
	}
	for _, s := range steps {
		fmt.Printf("\n## %s\n\n", s.name)
		if err := s.run(s.args); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}

// runScaleSim sweeps the simulated cluster size — the paper's closing
// claim that the design is "highly scalable with distributed control"
// and its plan for "an enlarged prototype of several hundreds of
// disks". The `scale` command (scale.go) is its real-TCP counterpart:
// coherent client sessions at thousands of connections.
func runScaleSim(args []string) error {
	fs := flag.NewFlagSet("scale-sim", flag.ExitOnError)
	nodesFlag := fs.String("sizes", "12,24,48,96", "cluster sizes (nodes, 1 disk each)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseInts(*nodesFlag)
	if err != nil {
		return err
	}
	cfg := bench.Config{LargeBytes: 2 << 20, SmallOps: 16}
	fmt.Println("Scalability sweep — RAID-x aggregate large-write bandwidth, clients = nodes:")
	fmt.Printf("%-8s %12s %14s %12s\n", "nodes", "MB/s", "per-node MB/s", "bottleneck")
	for _, n := range sizes {
		p := cluster.DefaultParams()
		p.Nodes = n
		r, err := bench.Bandwidth(p, bench.RAIDx, bench.LargeWrite, n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %12.2f %14.2f %12s\n", n, r.MBps, r.MBps/float64(n),
			fmt.Sprintf("%s@%.0f%%", r.Bottleneck, r.BottleneckUtil*100))
		record(benchResult{Name: fmt.Sprintf("scale-sim/%d", n), MBps: r.MBps})
	}
	return nil
}
