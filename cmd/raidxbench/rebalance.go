package main

// The online-membership benchmark: grow an array under a foreground
// write load and report the rebalance copy bandwidth, the foreground
// bandwidth it leaves standing, and the movement overhead against the
// theoretical k/(N+k) minimum. Real disks over the in-process engine —
// no network — so the numbers isolate the migration machinery itself.

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/store"
)

func runRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "base node count")
	add := fs.Int("add", 8, "nodes the grow attaches")
	blocks := fs.Int64("blocks", 4096, "blocks per disk")
	bs := fs.Int("bs", 1024, "block size (bytes)")
	writers := fs.Int("writers", 4, "concurrent foreground writers during the grow")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mk := func(first, n int) []raid.Dev {
		out := make([]raid.Dev, n)
		for i := range out {
			out[i] = disk.New(nil, fmt.Sprintf("rb-d%d", first+i), store.NewMem(*bs, *blocks), disk.DefaultModel())
		}
		return out
	}
	a, err := core.New(mk(0, *nodes), *nodes, 1, core.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	data := make([]byte, a.Blocks()*int64(*bs))
	rand.New(rand.NewSource(101)).Read(data)
	if err := a.WriteBlocks(ctx, 0, data); err != nil {
		return err
	}
	if err := a.Flush(ctx); err != nil {
		return err
	}

	// Foreground baseline: the same writer pool against the stable array.
	base := fgStorm(ctx, a, *writers, *bs, 400*time.Millisecond, nil)
	record(benchResult{Name: fmt.Sprintf("rebalance/fg-baseline-%dn", *nodes), MBps: base})

	m, err := a.BeginGrow(*add, mk(*nodes, *add), 0)
	if err != nil {
		return err
	}
	var fgDuring float64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fgDuring = fgStorm(ctx, a, *writers, *bs, 0, stop)
	}()
	start := time.Now()
	if err := m.Run(ctx, nil, nil); err != nil {
		return fmt.Errorf("grow migration: %w", err)
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err := a.Flush(ctx); err != nil {
		return err
	}
	if err := a.Verify(ctx); err != nil {
		return fmt.Errorf("verify after grow: %w", err)
	}

	st := m.Status()
	copyMBps := float64(st.MovedBytes) / 1e6 / elapsed.Seconds()
	minMoves := a.Blocks() * int64(*add) / int64(*nodes+*add)
	overhead := float64(st.MovedBlocks)/float64(minMoves) - 1
	growName := fmt.Sprintf("rebalance/copy-grow-%dto%d", *nodes, *nodes+*add)
	record(benchResult{Name: growName, MBps: copyMBps})
	record(benchResult{Name: fmt.Sprintf("rebalance/fg-during-grow-%dn", *nodes), MBps: fgDuring})

	fmt.Printf("Online grow %d -> %d nodes: %d logical blocks x %d B, %d foreground writer(s)\n",
		*nodes, *nodes+*add, a.Blocks(), *bs, *writers)
	fmt.Printf("%-28s %12s\n", "metric", "value")
	fmt.Printf("%-28s %9.2f MB/s\n", "rebalance copy bandwidth", copyMBps)
	fmt.Printf("%-28s %9.2f MB/s\n", "foreground baseline", base)
	fmt.Printf("%-28s %9.2f MB/s\n", "foreground during grow", fgDuring)
	fmt.Printf("%-28s %12v\n", "migration wall time", elapsed.Round(time.Millisecond))
	fmt.Printf("%-28s %7d / %d (overhead %.1f%%, bound 25%%)\n",
		"moved blocks vs minimum", st.MovedBlocks, minMoves, overhead*100)
	if st.MovedBlocks < minMoves || overhead > 0.25 {
		return fmt.Errorf("movement outside the minimal bound: moved %d, minimum %d", st.MovedBlocks, minMoves)
	}
	return nil
}

// fgStorm runs writers random-writing 8-block bursts until either d
// elapses (stop nil) or stop closes, and returns the aggregate MB/s.
// Each writer owns a private span so the shadow bookkeeping the drill
// tests need is unnecessary here.
func fgStorm(ctx context.Context, a *core.RAIDx, writers, bs int, d time.Duration, stop <-chan struct{}) float64 {
	var bytes atomic.Int64
	var wg sync.WaitGroup
	timed := make(chan struct{})
	if stop == nil {
		stop = timed
	}
	span := a.Blocks() / int64(writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			buf := make([]byte, 8*bs)
			for {
				select {
				case <-stop:
					return
				default:
				}
				lb := int64(w)*span + rng.Int63n(span-8)
				rng.Read(buf)
				if err := a.WriteBlocks(ctx, lb, buf); err != nil {
					return
				}
				bytes.Add(int64(len(buf)))
			}
		}()
	}
	if d > 0 {
		time.Sleep(d)
		close(timed)
	}
	wg.Wait()
	return float64(bytes.Load()) / 1e6 / time.Since(start).Seconds()
}
