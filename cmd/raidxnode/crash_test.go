package main

// The real-process crash drill: raidxnode binaries are built and run,
// one is SIGKILLed mid-write-storm and restarted against the same -dir,
// and the repair supervisor must bring the array back to a clean Verify
// by delta-resyncing only the regions dirtied while the node was dead —
// with zero foreground I/O errors throughout. Superblocks must read
// unclean after the kill and clean after an orderly SIGTERM everywhere.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

const (
	nBlocks = 256
	nBS     = 1024
)

// buildNode compiles the raidxnode binary once per test run.
func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "raidxnode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build raidxnode: %v\n%s", err, out)
	}
	return bin
}

type nodeProc struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	name   string
	addr   string
	dir    string
}

// startNode launches one raidxnode on addr (":0" learns a port through
// -addr-file) with persistent images under dir.
func startNode(t *testing.T, bin, name, addr, dir string, extra ...string) *nodeProc {
	t.Helper()
	addrFile := filepath.Join(dir, "addr")
	os.Remove(addrFile)
	args := []string{
		"-addr", addr, "-addr-file", addrFile,
		"-name", name, "-dir", dir,
		"-disks", "1", "-blocks", fmt.Sprint(nBlocks), "-bs", fmt.Sprint(nBS),
	}
	args = append(args, extra...)
	n := &nodeProc{cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}, name: name, dir: dir}
	n.cmd.Stderr = n.stderr
	if err := n.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if n.cmd.ProcessState == nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			n.addr = strings.TrimSpace(string(raw))
			return n
		}
		if n.cmd.ProcessState != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never published its address; stderr:\n%s", name, n.stderr)
	return nil
}

func (n *nodeProc) sigkill(t *testing.T) {
	t.Helper()
	if err := n.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	n.cmd.Wait()
}

func (n *nodeProc) sigterm(t *testing.T) {
	t.Helper()
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { n.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("node %s ignored SIGTERM; stderr:\n%s", n.name, n.stderr)
	}
}

func (n *nodeProc) image() string {
	return filepath.Join(n.dir, n.name+"-d0.img")
}

func waitDevStatus(t *testing.T, sup *repair.Supervisor, idx int, within time.Duration, cond func(repair.DevStatus) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := sup.Status().Devices[idx]
		if cond(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %d never reached %q (state %s, rebuilds %d, resyncs %d, lastErr %q)",
				idx, what, st.State, st.Rebuilds, st.Resyncs, st.LastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashRestartSIGKILLDeltaResync(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	bin := buildNode(t)
	const numNodes = 4
	procs := make([]*nodeProc, numNodes)
	for i := range procs {
		procs[i] = startNode(t, bin, fmt.Sprintf("n%d", i), "127.0.0.1:0", t.TempDir())
	}

	clients := make([]*cdd.NodeClient, numNodes)
	devs := make([]raid.Dev, numNodes)
	for i, p := range procs {
		c, err := cdd.Connect(p.addr)
		if err != nil {
			t.Fatalf("dial %s: %v", p.addr, err)
		}
		defer c.Close()
		clients[i] = c
		devs[i] = c.Dev(0)
	}
	il := intent.NewLog(numNodes, nBlocks, 8)
	arr, err := core.New(devs, numNodes, 1, core.Options{Intent: il, ForegroundMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	sup := repair.New(arr, nil, repair.Config{
		Poll:          5 * time.Millisecond,
		FailureBudget: 10 * time.Minute, // readmission only, never a spare
		ScrubStride:   4,
		StateDir:      stateDir,
	})

	ctx := context.Background()
	golden := make([]byte, arr.Blocks()*int64(nBS))
	rand.New(rand.NewSource(31)).Read(golden)
	if err := arr.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sup.Start(ctx)
	defer sup.Stop()

	// Foreground reader over the stable region: zero errors, zero wrong
	// bytes, through the kill, the restart, and the resync.
	stable := arr.Blocks() - 48
	var readErrs, reads atomic.Int64
	readerDone := make(chan struct{})
	readerStopped := make(chan struct{})
	go func() {
		defer close(readerStopped)
		rng := rand.New(rand.NewSource(32))
		buf := make([]byte, 8*nBS)
		for {
			select {
			case <-readerDone:
				return
			default:
			}
			off := int64(rng.Intn(int(stable) - 8))
			if err := arr.ReadBlocks(ctx, off, buf); err != nil {
				t.Errorf("foreground read at %d: %v", off, err)
				readErrs.Add(1)
				return
			}
			if !bytes.Equal(buf, golden[off*int64(nBS):(off+8)*int64(nBS)]) {
				t.Errorf("foreground read at %d returned wrong data", off)
				readErrs.Add(1)
				return
			}
			reads.Add(1)
		}
	}()

	// Write storm over the tail window; kill node 2 a few writes in.
	const victim = 2
	wbase := stable + 8
	rng := rand.New(rand.NewSource(33))
	storm := func(i int) {
		lb := wbase + rng.Int63n(32)
		buf := make([]byte, nBS)
		rng.Read(buf)
		deadline := time.Now().Add(20 * time.Second)
		for {
			if err := arr.WriteBlocks(ctx, lb, buf); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("storm write %d never succeeded", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
		copy(golden[lb*int64(nBS):], buf)
	}
	for i := 0; i < 5; i++ {
		storm(i)
	}
	procs[victim].sigkill(t)
	for i := 5; i < 30; i++ {
		storm(i)
	}
	if err := arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if il.DirtyRegions(victim) == 0 {
		t.Fatal("storm against the killed node logged no intents")
	}

	// The killed node's image must carry the unclean mark on disk.
	sb, _, err := store.InspectSuperblock(store.OS, procs[victim].image())
	if err != nil {
		t.Fatal(err)
	}
	if sb.Clean {
		t.Fatal("SIGKILLed image inspects as clean")
	}

	// Restart against the SAME images and the SAME address; the array's
	// clients reconnect on their own and the supervisor resyncs the delta.
	procs[victim] = startNode(t, bin, procs[victim].name, procs[victim].addr, procs[victim].dir)
	waitDevStatus(t, sup, victim, 60*time.Second, func(st repair.DevStatus) bool {
		return st.Resyncs >= 1 && st.State == repair.StateHealthy
	}, "delta resync after restart")

	st := sup.Status().Devices[victim]
	if st.Rebuilds != 0 {
		t.Fatalf("restarted node was fully rebuilt (%d times); the delta must suffice", st.Rebuilds)
	}
	deviceBytes := int64(nBlocks) * nBS
	if st.ResyncBytes <= 0 || st.ResyncBytes >= deviceBytes/4 {
		t.Fatalf("resync moved %d bytes, want a small nonzero delta of the %d-byte device",
			st.ResyncBytes, deviceBytes)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "intent.snap")); err != nil {
		t.Fatalf("supervisor state dir never got a snapshot: %v", err)
	}

	close(readerDone)
	<-readerStopped
	if readErrs.Load() != 0 || reads.Load() == 0 {
		t.Fatalf("reader: %d errors over %d reads", readErrs.Load(), reads.Load())
	}
	if err := arr.Verify(ctx); err != nil {
		t.Fatalf("verify after crash/restart cycle: %v", err)
	}
	got := make([]byte, len(golden))
	if err := arr.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after crash/restart cycle")
	}

	// Orderly shutdown everywhere: every image must inspect clean.
	sup.Stop()
	for _, c := range clients {
		c.Close()
	}
	for _, p := range procs {
		p.sigterm(t)
	}
	for _, p := range procs {
		sb, _, err := store.InspectSuperblock(store.OS, p.image())
		if err != nil {
			t.Fatalf("%s: %v", p.image(), err)
		}
		if !sb.Clean {
			t.Fatalf("%s not marked clean after SIGTERM; stderr:\n%s", p.image(), p.stderr)
		}
	}
}

// TestCrashRepairHostStateDir exercises the -repair-cluster wiring of
// the binary itself: a node that hosts the repair supervisor persists
// supervisor state under <dir>/repair and shuts down clean.
func TestCrashRepairHostStateDir(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	bin := buildNode(t)
	dir := t.TempDir()

	// The peer comes up first on an ephemeral port; the repair host needs
	// every cluster address — including its own — before it starts, so its
	// port is reserved up front.
	peer := startNode(t, bin, "peer", "127.0.0.1:0", t.TempDir())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	p := startNode(t, bin, "host", addr, dir,
		"-repair-cluster", addr+","+peer.addr,
		"-repair-spares", "0", "-repair-poll", "5ms")
	c, err := cdd.Connect(p.addr)
	if err != nil {
		t.Fatalf("dial repair host: %v\nstderr:\n%s", err, p.stderr)
	}
	// The wire surface answers: a supervisor is attached.
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.RepairStatus(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair supervisor never attached; stderr:\n%s", p.stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Close()

	p.sigterm(t)
	peer.sigterm(t)
	if _, err := os.Stat(filepath.Join(dir, "repair", "repair.ckpt")); err != nil {
		t.Fatalf("repair host persisted no checkpoint: %v\nstderr:\n%s", err, p.stderr)
	}
	for _, n := range []*nodeProc{p, peer} {
		sb, _, err := store.InspectSuperblock(store.OS, n.image())
		if err != nil {
			t.Fatal(err)
		}
		if !sb.Clean {
			t.Fatalf("%s image not clean after SIGTERM; stderr:\n%s", n.name, n.stderr)
		}
	}
}
