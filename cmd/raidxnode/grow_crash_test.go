package main

// The real-process grow crash drill: a 4-node cluster of raidxnode
// binaries grows to 12 via the wire control plane, the coordinator is
// SIGKILLed mid-rebalance, and its restart must resume the migration
// from the persisted epoch checkpoint (delta only, never from zero),
// finish it, broadcast the new generation to every member, and leave
// all twelve superblocks recording the adopted epoch after an orderly
// shutdown.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

const growBlocks = 2048 // per disk; 4 nodes => 4096 logical blocks

func TestGrowCrashSIGKILLResumeFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	bin := buildNode(t)

	// The coordinator needs a stable address across its restart, so its
	// port is reserved up front. The other eleven use ephemeral ports.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hostAddr := l.Addr().String()
	l.Close()

	const total = 12
	procs := make([]*nodeProc, total)
	for i := 1; i < total; i++ {
		procs[i] = startNode(t, bin, fmt.Sprintf("g%d", i), "127.0.0.1:0", t.TempDir(),
			"-blocks", fmt.Sprint(growBlocks))
	}
	baseAddrs := []string{hostAddr, procs[1].addr, procs[2].addr, procs[3].addr}
	hostDir := t.TempDir()
	hostArgs := func(cluster []string, rate int64) []string {
		return []string{
			"-blocks", fmt.Sprint(growBlocks),
			"-repair-cluster", strings.Join(cluster, ","),
			"-repair-spares", "0", "-repair-poll", "5ms",
			"-repair-rate", fmt.Sprint(rate),
		}
	}
	// The copy rate is capped so the kill lands mid-flight, well past
	// the first durable cursor checkpoint (the cursor persists on every
	// committed copy window).
	procs[0] = startNode(t, bin, "g0", hostAddr, hostDir, hostArgs(baseAddrs, 1<<20)...)

	ctx := context.Background()
	clients := make([]*cdd.NodeClient, total)
	for i, p := range procs {
		c, err := cdd.Connect(p.addr)
		if err != nil {
			t.Fatalf("dial %s: %v", p.addr, err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Golden prefill through a client-side mount of the 4-node array.
	devs := make([]raid.Dev, 4)
	for i := 0; i < 4; i++ {
		devs[i] = clients[i].Dev(0)
	}
	arr, err := core.New(devs, 4, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]byte, arr.Blocks()*int64(nBS))
	rand.New(rand.NewSource(67)).Read(golden)
	if err := arr.WriteBlocks(ctx, 0, golden); err != nil {
		t.Fatal(err)
	}
	if err := arr.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Start the grow over the wire and let it pass the first durable
	// checkpoint before the kill.
	joinAddrs := make([]string, 0, 8)
	for _, p := range procs[4:] {
		joinAddrs = append(joinAddrs, p.addr)
	}
	growDeadline := time.Now().Add(30 * time.Second)
	for {
		err := clients[0].RebalanceCtl(ctx, "grow", 8, joinAddrs)
		if err == nil || strings.Contains(err.Error(), "rebalance in progress") {
			// "in progress" means an earlier attempt started it and only
			// the response was lost.
			break
		}
		if time.Now().After(growDeadline) {
			t.Fatalf("grow never started: %v\nstderr:\n%s", err, procs[0].stderr)
		}
		time.Sleep(20 * time.Millisecond) // supervisor may still be attaching
	}
	waitLayout(t, clients[0], 60*time.Second, "mid-flight cursor past a checkpoint", func(li cdd.LayoutInfo) bool {
		return li.Migrating && li.Cursor >= 1536
	})
	procs[0].sigkill(t)

	// The durable record: an in-flight grow with a non-zero cursor.
	ck, err := repair.LoadRebalance(store.OS, hostDir+"/repair")
	if err != nil || ck == nil {
		t.Fatalf("epoch checkpoint after SIGKILL: %+v, %v", ck, err)
	}
	if ck.Done || ck.Action != "grow" || ck.Nodes != 8 || ck.Cursor < 1024 {
		t.Fatalf("checkpoint %+v, want an in-flight grow by 8 with cursor >= 1024", ck)
	}

	// Restart against the same images and address, now listing the full
	// target membership. The binary must reopen the array at the source
	// epoch over the widened table and resume from the recorded cursor —
	// a cursor observed below it would mean the migration restarted from
	// zero.
	allAddrs := append(append([]string{}, baseAddrs...), joinAddrs...)
	procs[0] = startNode(t, bin, "g0", hostAddr, hostDir, hostArgs(allAddrs, 1<<20)...)
	// Completion requires the stable descriptor, not just Gen == 1: the
	// fence adopts the target generation at migration start and persists
	// it, so the restarted coordinator reports Gen 1 with no descriptor
	// during the window before the resume attaches.
	sawResume := false
	waitLayout(t, clients[0], 120*time.Second, "resumed grow to finish", func(li cdd.LayoutInfo) bool {
		if li.Migrating {
			if li.Cursor < ck.Cursor {
				t.Fatalf("resumed migration cursor %d below checkpoint %d: restarted from zero", li.Cursor, ck.Cursor)
			}
			sawResume = true
		}
		return !li.Migrating && li.Gen == 1 && li.Desc != nil
	})
	if !sawResume {
		t.Log("resumed migration finished between polls; cursor floor unobserved")
	}

	// Every member reports the adopted generation (the fence adopts it
	// at migration start; the stable broadcast keeps it).
	for i, c := range clients {
		waitLayout(t, c, 30*time.Second, fmt.Sprintf("node %d to adopt epoch 1", i), func(li cdd.LayoutInfo) bool {
			return li.Gen == 1
		})
	}

	// Audit through a fresh mount at the grown epoch: the device table
	// is rebuilt in epoch column order from the coordinator's layout,
	// and the mount tags its I/O at the adopted generation the way
	// buildEngine does — members may still be fenced until the stable
	// completion broadcast lands, and tagged requests pass the fence.
	li, err := clients[0].Layout(ctx)
	if err != nil || li.Desc == nil {
		t.Fatalf("coordinator layout after resume: %+v, %v", li, err)
	}
	for _, c := range clients {
		c.SetArrayEpoch(li.Gen)
	}
	ep, err := layout.EpochFromDesc(*li.Desc)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Nodes() != total {
		t.Fatalf("grown epoch spans %d nodes, want %d", ep.Nodes(), total)
	}
	gdevs := make([]raid.Dev, ep.Width())
	for d := range gdevs {
		gdevs[d] = clients[ep.NodeOf(d)].Dev(ep.LocalOf(d))
	}
	grown, err := core.NewAtEpoch(gdevs, ep, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(golden))
	if err := grown.ReadBlocks(ctx, 0, got); err != nil {
		t.Fatalf("read after resumed grow: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("data wrong after SIGKILL + resumed grow")
	}
	if err := grown.Verify(ctx); err != nil {
		t.Fatalf("verify after resumed grow: %v", err)
	}

	// The stable completion broadcast clears every member's fence:
	// untagged block I/O must be accepted again once it lands.
	probe := make([]byte, nBS)
	for i, c := range clients {
		c.SetArrayEpoch(0)
		fenceDeadline := time.Now().Add(30 * time.Second)
		for {
			err := c.Dev(0).ReadBlocks(ctx, 0, probe)
			if err == nil {
				break
			}
			if time.Now().After(fenceDeadline) {
				t.Fatalf("node %d still rejects untagged I/O 30s after completion: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Orderly shutdown: every image inspects clean AND records the
	// adopted epoch, so a future restart re-enforces the fence on its
	// own.
	for _, c := range clients {
		c.Close()
	}
	for _, p := range procs {
		p.sigterm(t)
	}
	for i, p := range procs {
		sb, _, err := store.InspectSuperblock(store.OS, p.image())
		if err != nil {
			t.Fatalf("%s: %v", p.image(), err)
		}
		if !sb.Clean {
			t.Fatalf("node %d image not clean after SIGTERM; stderr:\n%s", i, p.stderr)
		}
		if sb.ArrayEpoch != 1 {
			t.Fatalf("node %d image records epoch %d, want 1; stderr:\n%s", i, sb.ArrayEpoch, p.stderr)
		}
	}
}

// waitLayout polls a node's layout view until cond holds.
func waitLayout(t *testing.T, c *cdd.NodeClient, within time.Duration, what string, cond func(cdd.LayoutInfo) bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		li, err := c.Layout(ctx)
		cancel()
		if err == nil && cond(li) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (last: %+v, err %v)", what, li, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
