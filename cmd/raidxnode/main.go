// Command raidxnode runs one cooperative-disk-driver storage node: it
// exports a set of disks over the CDD wire protocol so remote clients
// can assemble distributed arrays across nodes. With several raidxnode
// processes (one per host, or per port on one host) and a client using
// the raidx package, the serverless cluster of the paper runs for real
// over TCP.
//
//	raidxnode -addr :7000 -disks 1 -blocks 4096 -bs 32768
//
// With -http the node additionally serves its observability surfaces:
//
//	raidxnode -addr :7000 -http :7080
//	curl http://localhost:7080/stats          # obs registry as JSON
//	curl http://localhost:7080/metrics        # Prometheus text format
//	curl http://localhost:7080/trace?n=5      # recent + slow traces, JSON
//	go tool pprof http://localhost:7080/debug/pprof/profile
//
// -pprof writes a CPU profile of the whole run to a file (stopped and
// flushed on shutdown), for profiling without the HTTP listener.
//
// With -repair-cluster the node also runs the self-healing repair
// supervisor over the whole array (run it on exactly one node — the
// repair host). The host mounts the cluster as a client, watches member
// health, swaps local hot spares for members that stay dead past the
// failure budget, rebuilds them in the background, and delta-resyncs
// members that return after a blip. Its write-intent log is replicated
// to every node through the CDD protocol, so a restarted host recovers
// the dirty map from any survivor:
//
//	raidxnode -addr :7000 -repair-cluster :7000,:7001,:7002,:7003 \
//	          -repair-spares 1 -repair-budget 5s
//	curl http://localhost:7080/repair         # supervisor status, JSON
//	raidxctl repair status -addrs :7000,...   # same, over the CDD wire
//
// Disks are in-memory by default (this reproduction's substitute for
// the Trojans cluster's SCSI drives); with -dir they become persistent
// file-backed images that survive restarts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/intent"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/raid"
	"repro/internal/repair"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "listen address")
	nDisks := flag.Int("disks", 1, "disks to export")
	blocks := flag.Int64("blocks", 4096, "blocks per disk")
	bs := flag.Int("bs", 32<<10, "block size (bytes)")
	name := flag.String("name", "node", "node name (disk id prefix)")
	dir := flag.String("dir", "", "directory for persistent disk images (empty: in-memory)")
	httpAddr := flag.String("http", "", "HTTP listen address for /stats, /metrics, /trace and pprof (empty: disabled)")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the whole run to this file")
	traceSlow := flag.Duration("trace-slow", 0, "slow-log promotion threshold for server-side traces (0: default, negative: disabled)")
	traceSample := flag.Int("trace-sample", 0, "record 1 in N server-side root traces (0: default)")
	repairCluster := flag.String("repair-cluster", "", "comma-separated addresses of ALL cluster nodes in SIOS order; enables the self-healing repair supervisor on this node (run on exactly one node)")
	repairSpares := flag.Int("repair-spares", 1, "local hot-spare disks the supervisor may swap in")
	repairBudget := flag.Duration("repair-budget", 5*time.Second, "how long a member may stay dead before a spare is swapped in")
	repairRate := flag.Int64("repair-rate", 0, "background repair bandwidth cap in bytes/sec (0: unlimited)")
	repairPoll := flag.Duration("repair-poll", 250*time.Millisecond, "health-scan interval of the repair supervisor")
	intentRegion := flag.Int64("intent-region", intent.DefaultRegionBlocks, "write-intent dirty-region granularity in blocks")
	arrayName := flag.String("array", "raidx", "array name, the replication key for write-intent snapshots")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once serving (for :0 ports)")
	repairState := flag.String("repair-state", "", "directory for the repair supervisor's local crash-recovery state (default <dir>/repair when -dir is set)")
	qosFG := flag.Int64("qos-fg-rate", 0, "QoS foreground (client I/O) admission rate in bytes/sec (0: unlimited)")
	qosBG := flag.Int64("qos-bg-rate", 0, "QoS background (repair/resync/scrub) admission rate in bytes/sec (0: unlimited)")
	sampleEvery := flag.Duration("sample", obs.DefaultSampleInterval, "time-series sampling interval for /stats/series (0: sampler disabled)")
	sampleCap := flag.Int("sample-cap", obs.DefaultSampleCapacity, "time-series ring capacity (samples retained)")
	sloP99 := flag.Duration("slo-p99", 0, "foreground latency objective: ops slower than this burn the SLO budget (0: SLO tracker disabled)")
	sloBudget := flag.Float64("slo-err-budget", obs.DefaultSLOErrorBudget, "SLO error budget: allowed fraction of bad (slow or failed) foreground ops")
	sloFast := flag.Duration("slo-fast", obs.DefaultSLOFastWindow, "SLO fast burn window")
	sloSlow := flag.Duration("slo-slow", obs.DefaultSLOSlowWindow, "SLO slow burn window")
	sloMinBG := flag.Int64("slo-min-bg", 0, "floor for SLO feedback stepping the background QoS rate down (0: baseline/16)")
	epochGen := flag.Uint64("epoch", 0, "asserted cluster array epoch: disk images recording a NEWER epoch are refused at open (0: skip the check)")
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			log.Fatalf("raidxnode: -pprof: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("raidxnode: -pprof: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("raidxnode: -pprof: %v", err)
			}
			log.Printf("raidxnode: CPU profile written to %s", *pprofOut)
		}()
	}

	disks := make([]*disk.Disk, *nDisks)
	var fileStores []*store.File
	for i := range disks {
		var st store.BlockStore
		if *dir == "" {
			st = store.NewMem(*bs, *blocks)
		} else {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			img := filepath.Join(*dir, fmt.Sprintf("%s-d%d.img", *name, i))
			fst, err := store.OpenFileFS(store.OS, img, *bs, *blocks, store.FileOptions{Epoch: *epochGen})
			if err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			if !fst.WasClean() {
				log.Printf("raidxnode %s: %s was not shut down cleanly (device %s); contents may lag the mirrors until resync",
					*name, img, store.UUIDString(fst.DeviceUUID()))
			}
			fileStores = append(fileStores, fst)
			st = fst
		}
		disks[i] = disk.New(nil, fmt.Sprintf("%s-d%d", *name, i), st, disk.DefaultModel())
	}
	node, err := cdd.ListenAndServe(*addr, disks)
	if err != nil {
		log.Fatalf("raidxnode: %v", err)
	}
	log.Printf("raidxnode %s: exporting %d disk(s) x %d blocks x %d B on %s",
		*name, *nDisks, *blocks, *bs, node.Addr())
	if *addrFile != "" {
		// Written atomically so a harness polling the file never reads a
		// half-written address.
		if err := store.WriteFileAtomic(store.OS, *addrFile, []byte(fmt.Sprintf("%s\n", node.Addr()))); err != nil {
			log.Fatalf("raidxnode: -addr-file: %v", err)
		}
	}

	// Epoch fence bootstrap: persist every adopted generation into the
	// images' superblocks, and seed the fence from what they recorded —
	// a restarted node re-enforces the last generation it witnessed
	// without waiting for a coordinator broadcast.
	if len(fileStores) > 0 {
		node.Manager.SetEpochNotify(func(gen uint64) {
			for _, fst := range fileStores {
				if err := fst.SetEpoch(gen); err != nil {
					log.Printf("raidxnode: persist epoch %d: %v", gen, err)
				}
			}
		})
		var seed uint64
		for _, fst := range fileStores {
			if e := fst.Epoch(); e > seed {
				seed = e
			}
		}
		node.Manager.AdoptEpoch(seed)
	}
	if *epochGen > 0 {
		node.Manager.AdoptEpoch(*epochGen)
	}

	tracer := node.Manager.Tracer()
	if *traceSlow != 0 {
		tracer.SetSlowThreshold(*traceSlow)
	}
	if *traceSample > 0 {
		tracer.SetSampleEvery(*traceSample)
	}

	var sched *qos.Scheduler
	if *qosFG > 0 || *qosBG > 0 {
		sched = qos.New(qos.Config{
			ForegroundBytesPerSec: *qosFG,
			BackgroundBytesPerSec: *qosBG,
			Obs:                   node.Manager.Obs(),
		})
		log.Printf("raidxnode %s: QoS admission control: foreground %d B/s, background %d B/s (0 = unlimited)",
			*name, *qosFG, *qosBG)
	}

	var sampler *obs.Sampler
	if *sampleEvery > 0 {
		sampler = obs.NewSampler(node.Manager.Obs(), obs.SamplerConfig{
			Interval: *sampleEvery,
			Capacity: *sampleCap,
		})
		sampler.Start()
		defer sampler.Stop()
	}

	var slo *obs.SLOTracker
	if *sloP99 > 0 {
		var act obs.Actuator
		if sched != nil && *qosBG > 0 {
			act = sched
		}
		slo = obs.NewSLOTracker(obs.SLOConfig{
			Name:              "fg",
			Registry:          node.Manager.Obs(),
			LatencyHist:       node.Manager.Obs().Histogram("mgr.fg_latency"),
			LatencyObjective:  *sloP99,
			ErrorCounter:      node.Manager.Obs().Counter("mgr.fg_errors"),
			OpsCounter:        node.Manager.Obs().Counter("mgr.fg_ops"),
			ErrorBudget:       *sloBudget,
			FastWindow:        *sloFast,
			SlowWindow:        *sloSlow,
			Actuator:          act,
			MinBackgroundRate: *sloMinBG,
		})
		// Evaluate a few times per fast window so a burn is caught and
		// acted on before the window fully elapses.
		evalEvery := *sloFast / 5
		if evalEvery < 100*time.Millisecond {
			evalEvery = 100 * time.Millisecond
		}
		slo.Start(evalEvery)
		defer slo.Stop()
		if act != nil {
			log.Printf("raidxnode %s: SLO tracker: fg p99 objective %v, budget %.2g, feedback onto background QoS rate",
				*name, *sloP99, *sloBudget)
		} else {
			log.Printf("raidxnode %s: SLO tracker: fg p99 objective %v, budget %.2g (observe-only: no -qos-bg-rate)",
				*name, *sloP99, *sloBudget)
		}
	}

	var sup *repair.Supervisor
	var stopRepair func()
	if *repairCluster != "" {
		stateDir := *repairState
		if stateDir == "" && *dir != "" {
			stateDir = filepath.Join(*dir, "repair")
		}
		var err error
		sup, stopRepair, err = startRepair(node, repairOpts{
			cluster:      *repairCluster,
			spares:       *repairSpares,
			budget:       *repairBudget,
			rate:         *repairRate,
			poll:         *repairPoll,
			regionBlocks: *intentRegion,
			array:        *arrayName,
			blockSize:    *bs,
			blocks:       *blocks,
			stateDir:     stateDir,
			sched:        sched,
		})
		if err != nil {
			log.Fatalf("raidxnode: repair supervisor: %v", err)
		}
		log.Printf("raidxnode %s: repair supervisor running over %s (%d spare(s), budget %v)",
			*name, *repairCluster, *repairSpares, *repairBudget)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := node.Manager.Obs().WriteJSON(w); err != nil {
				log.Printf("raidxnode: /stats: %v", err)
			}
		})
		mux.HandleFunc("/stats/series", func(w http.ResponseWriter, _ *http.Request) {
			if sampler == nil {
				http.Error(w, "time-series sampler disabled (-sample 0)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := sampler.WriteJSON(w); err != nil {
				log.Printf("raidxnode: /stats/series: %v", err)
			}
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := node.Manager.Obs().WriteProm(w); err != nil {
				log.Printf("raidxnode: /metrics: %v", err)
			}
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			limit := 10
			if q := r.URL.Query().Get("n"); q != "" {
				if n, err := strconv.Atoi(q); err == nil {
					limit = n
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tracer.Snapshot(limit)); err != nil {
				log.Printf("raidxnode: /trace: %v", err)
			}
		})
		mux.HandleFunc("/repair", func(w http.ResponseWriter, _ *http.Request) {
			if sup == nil {
				http.Error(w, "no repair supervisor on this node (start with -repair-cluster)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			raw, err := sup.StatusJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(raw)
		})
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		srv := &http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("raidxnode %s: serving /stats /metrics /trace /debug/pprof on http://%s", *name, *httpAddr)
			if err := srv.ListenAndServe(); err != nil {
				log.Printf("raidxnode: http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("raidxnode %s: shutting down", *name)
	// Orderly teardown for crash consistency: stop the supervisor (its
	// checkpoint survives for the next start), drain and close the
	// server, and only THEN sync the file stores and mark their
	// superblocks clean — the clean flag must never get ahead of the last
	// client write. A crash skips all of this; that is exactly what the
	// unclean flag records.
	if stopRepair != nil {
		stopRepair()
	}
	if err := node.Close(); err != nil {
		log.Printf("raidxnode: close: %v", err)
	}
	for _, fst := range fileStores {
		if err := fst.CloseClean(); err != nil {
			log.Printf("raidxnode: close disk image: %v", err)
		}
	}
}

type repairOpts struct {
	cluster      string
	spares       int
	budget       time.Duration
	rate         int64
	poll         time.Duration
	regionBlocks int64
	array        string
	blockSize    int
	blocks       int64
	stateDir     string
	sched        *qos.Scheduler
}

// startRepair mounts the whole cluster as a client, recovers any
// replicated write-intent snapshot, and runs the self-healing
// supervisor over the assembled array. The returned stop function
// halts the supervisor and closes the client connections.
func startRepair(node *cdd.Node, o repairOpts) (*repair.Supervisor, func(), error) {
	list := strings.Split(o.cluster, ",")
	clients := make([]*cdd.NodeClient, 0, len(list))
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
	}
	for _, a := range list {
		c, err := cdd.Connect(strings.TrimSpace(a))
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("dial %s: %w", a, err)
		}
		clients = append(clients, c)
	}
	perNode := clients[0].NumDisks()

	// Layout position: the epoch checkpoint (StateDir/epoch.json) records
	// the generation the array reached and any migration cut short by a
	// crash. With no checkpoint the array mounts at generation zero and
	// the device table is the fresh SIOS interleave; with one, the table
	// is rebuilt in EPOCH column order — base columns interleave at the
	// BASE node count and grown columns are appended — which is not the
	// interleave at the current node count.
	var ck *repair.RebalanceCkpt
	if o.stateDir != "" {
		var err error
		if ck, err = repair.LoadRebalance(store.OS, o.stateDir); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	var (
		devs  []raid.Dev
		srcEp *layout.Epoch
	)
	if ck == nil {
		devs = make([]raid.Dev, len(clients)*perNode)
		for local := 0; local < perNode; local++ {
			for n := range clients {
				devs[n+local*len(clients)] = clients[n].Dev(local)
			}
		}
	} else {
		var err error
		if srcEp, err = layout.EpochFromDesc(ck.Source); err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("epoch checkpoint: %w", err)
		}
		// A grow interrupted mid-migration needs the table to already span
		// the target width (BeginGrow resumes with no new devices).
		tableEp := srcEp
		if !ck.Done && ck.Action == "grow" {
			if tableEp, err = srcEp.Grow(ck.Nodes); err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("epoch checkpoint: %w", err)
			}
		}
		if tableEp.Nodes() > len(clients) {
			closeAll()
			return nil, nil, fmt.Errorf("-repair-cluster lists %d node(s); epoch %d spans %d",
				len(clients), tableEp.Gen(), tableEp.Nodes())
		}
		devs = make([]raid.Dev, tableEp.Width())
		for d := range devs {
			n, local := tableEp.NodeOf(d), tableEp.LocalOf(d)
			if !tableEp.Active(d) && n >= len(clients) {
				continue // retired node no longer listed; column stays nil
			}
			if local >= perNode {
				closeAll()
				return nil, nil, fmt.Errorf("epoch column %d is local disk %d of node %d, but nodes export %d disk(s)",
					d, local, n, perNode)
			}
			devs[d] = clients[n].Dev(local)
		}
	}
	il := intent.NewLog(len(devs), o.blocks, o.regionBlocks)
	// Crash recovery, local first: our own StateDir snapshot is the
	// freshest record of what this host dirtied before it died. Peer
	// copies merge on top (snapshots union, so order only matters for
	// the log line).
	if o.stateDir != "" {
		if err := il.LoadFrom(store.OS, filepath.Join(o.stateDir, "intent.snap")); err != nil {
			log.Printf("raidxnode: stale local intent snapshot ignored: %v", err)
		} else if il.AnyDirty() {
			log.Printf("raidxnode: recovered local intent snapshot from %s", o.stateDir)
		}
	}
	// Then merge whatever intent snapshot the peers kept for us, so
	// regions dirtied before a supervisor restart still resync even when
	// the local state died with the machine.
	recoverCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	for _, c := range clients {
		snap, err := c.GetIntent(recoverCtx, o.array)
		if err != nil || len(snap) == 0 {
			continue
		}
		if err := il.Merge(snap); err != nil {
			log.Printf("raidxnode: stale intent snapshot from %s ignored: %v", c.Addr(), err)
		}
	}
	cancel()
	copts := core.Options{
		Obs:    node.Manager.Obs(),
		Trace:  node.Manager.Tracer(),
		Intent: il,
	}
	var (
		arr *core.RAIDx
		err error
	)
	if srcEp != nil {
		arr, err = core.NewAtEpoch(devs, srcEp, copts)
	} else {
		arr, err = core.New(devs, len(clients), perNode, copts)
	}
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	var sp *raid.Sparer
	if o.spares > 0 {
		spareDevs := make([]raid.Dev, o.spares)
		for i := range spareDevs {
			spareDevs[i] = disk.New(nil, fmt.Sprintf("spare-%d", i),
				store.NewMem(o.blockSize, o.blocks), disk.DefaultModel())
		}
		sp = raid.NewSparer(arr, spareDevs)
	}
	if o.stateDir != "" {
		if err := os.MkdirAll(o.stateDir, 0o755); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	var pace core.PaceFunc
	if o.sched != nil {
		// Maintenance traffic yields to foreground serving under the
		// background admission rate.
		pace = o.sched.Pace(qos.Background, "repair")
	}
	sup := repair.New(arr, sp, repair.Config{
		Poll:            o.poll,
		FailureBudget:   o.budget,
		RateBytesPerSec: o.rate,
		Pace:            pace,
		StateDir:        o.stateDir,
		Obs:             node.Manager.Obs(),
		Persist: func(snap []byte) {
			// Replicate the dirty map to every node, best effort; any one
			// surviving copy is enough for recovery.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for _, c := range clients {
				if err := c.PutIntent(ctx, o.array, snap); err != nil {
					log.Printf("raidxnode: intent replication to %s: %v", c.Addr(), err)
				}
			}
		},
	})
	node.Manager.SetRepair(sup)
	coord := &rebalanceCoord{sup: sup, arr: arr, node: node, perNode: perNode, clients: clients}
	node.Manager.SetRebalance(coord)
	// Seed the fence and the mount's I/O tags at the mounted generation.
	// There is no transport-level stale-epoch recovery: this engine is
	// migration-aware, so a stale rejection means a foreign coordinator
	// moved the layout underneath it — fail typed rather than guess.
	if srcEp != nil && srcEp.Gen() > 0 {
		node.Manager.AdoptEpoch(srcEp.Gen())
		for _, c := range clients {
			c.SetArrayEpoch(srcEp.Gen())
		}
	}
	// Resume an interrupted migration BEFORE background jobs run: blocks
	// below the checkpointed cursor already live at their target homes,
	// and only the restored migration state routes reads there. The
	// resumed copy re-covers at most the window lost after the last
	// checkpoint — a delta, not a restart.
	if ck != nil && !ck.Done {
		var rerr error
		switch ck.Action {
		case "grow":
			rerr = sup.StartGrow(ck.Nodes, nil, ck.Cursor)
		case "shrink":
			rerr = sup.StartShrink(ck.Nodes, ck.Cursor)
		default:
			rerr = fmt.Errorf("unknown action %q", ck.Action)
		}
		if rerr != nil {
			sup.Stop()
			closeAll()
			return nil, nil, fmt.Errorf("resume epoch checkpoint: %w", rerr)
		}
		log.Printf("raidxnode: resuming %s by %d node(s) at block %d (epoch %d)",
			ck.Action, ck.Nodes, ck.Cursor, srcEp.Gen())
		// Re-fence the members: the fence flag is volatile and every node
		// that restarted with this coordinator has lost it.
		coord.fenceMembers()
		go coord.watchCompletion()
	}
	sup.Start(context.Background())
	return sup, func() { sup.Stop(); coord.closeJoined(); closeAll() }, nil
}

// rebalanceCoord implements cdd.RebalanceController over the repair
// supervisor: raidxctl grow|shrink land here via OpRebalanceCtl, and
// OpLayout serves the full epoch descriptor clients rebuild their
// placement maps from.
type rebalanceCoord struct {
	sup     *repair.Supervisor
	arr     *core.RAIDx
	node    *cdd.Node
	perNode int

	mu       sync.Mutex
	clients  []*cdd.NodeClient // every member node, for the completion broadcast
	joined   []*cdd.NodeClient // clients this coordinator dialed for grows
	watching bool
}

// LayoutJSON serves the coordinator's layout view: stable epoch
// descriptor plus migration progress while one is in flight.
func (g *rebalanceCoord) LayoutJSON() ([]byte, error) {
	ep := g.arr.Epoch()
	desc := ep.Desc()
	li := cdd.LayoutInfo{Gen: ep.Gen(), Desc: &desc}
	if cursor, tgen, active := g.arr.Migrating(); active {
		li.Migrating, li.Cursor, li.TargetGen = true, cursor, tgen
	}
	return json.Marshal(li)
}

// Rebalance starts a membership change. Refusals (a rebalance already
// in flight, recovery busy, bad geometry) come back typed from the
// supervisor and travel to raidxctl as remote errors.
func (g *rebalanceCoord) Rebalance(action string, nodes int, addrs []string) error {
	switch action {
	case "grow":
		if len(addrs) != nodes {
			return fmt.Errorf("grow by %d node(s) needs %d address(es), got %d", nodes, nodes, len(addrs))
		}
		joined := make([]*cdd.NodeClient, 0, nodes)
		fail := func(err error) error {
			for _, c := range joined {
				c.Close()
			}
			return err
		}
		for _, a := range addrs {
			c, err := cdd.Connect(strings.TrimSpace(a))
			if err != nil {
				return fail(fmt.Errorf("dial joining node %s: %w", a, err))
			}
			joined = append(joined, c)
			if c.NumDisks() < g.perNode {
				return fail(fmt.Errorf("joining node %s exports %d disk(s), need %d", a, c.NumDisks(), g.perNode))
			}
		}
		// BeginGrow column order: appended column w + l·add + m is local
		// disk l of joining node m — outer loop locals, inner loop nodes.
		newDevs := make([]raid.Dev, 0, nodes*g.perNode)
		for l := 0; l < g.perNode; l++ {
			for m := 0; m < nodes; m++ {
				newDevs = append(newDevs, joined[m].Dev(l))
			}
		}
		if err := g.sup.StartGrow(nodes, newDevs, 0); err != nil {
			return fail(err)
		}
		g.mu.Lock()
		g.clients = append(g.clients, joined...)
		g.joined = append(g.joined, joined...)
		g.mu.Unlock()
	case "shrink":
		if err := g.sup.StartShrink(nodes, 0); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown rebalance action %q (want grow or shrink)", action)
	}
	// Fence the membership before blocks start moving in earnest: from
	// here until completion the coordinator is the only sanctioned
	// writer, and any other mount's untagged or stale-tagged I/O must
	// bounce typed instead of landing at homes the copy will retire.
	g.fenceMembers()
	go g.watchCompletion()
	return nil
}

// fenceMembers fences every member node for the in-flight migration:
// each adopts the target generation and rejects untagged block I/O
// until the completion broadcast clears the fence. The coordinator's
// own clients are re-tagged at the target generation first, so its
// foreground I/O — the one writer that routes around the copy cursor —
// passes the fences it raises.
func (g *rebalanceCoord) fenceMembers() {
	_, tgen, active := g.arr.Migrating()
	if !active {
		return
	}
	g.node.Manager.AdoptEpoch(tgen)
	g.node.Manager.SetEpochFence(true)
	g.mu.Lock()
	cs := append([]*cdd.NodeClient(nil), g.clients...)
	g.mu.Unlock()
	for _, c := range cs {
		c.SetArrayEpoch(tgen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range cs {
		if _, err := c.FenceEpoch(ctx, tgen); err != nil {
			log.Printf("raidxnode: epoch %d fence to %s: %v", tgen, c.Addr(), err)
		}
	}
}

// watchCompletion waits out the in-flight migration and then broadcasts
// the new epoch generation to every member node — the wire fence that
// bounces clients still placing I/O with the retired map. (An errored
// migration stays active and is retried by the supervisor's tick, so
// the watcher keeps waiting.)
func (g *rebalanceCoord) watchCompletion() {
	g.mu.Lock()
	if g.watching {
		g.mu.Unlock()
		return
	}
	g.watching = true
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.watching = false
		g.mu.Unlock()
	}()
	for i := 0; ; i++ {
		if _, _, active := g.arr.Migrating(); !active {
			break
		}
		// Re-raise the fence every ~2s: the flag is volatile, so a member
		// that restarted mid-migration comes back up unfenced (its adopted
		// generation survives in the superblock, but the fence does not).
		if i%20 == 19 {
			g.fenceMembers()
		}
		time.Sleep(100 * time.Millisecond)
	}
	st := g.sup.RebalanceStatus()
	if st == nil || !st.Done {
		return
	}
	gen := g.arr.Epoch().Gen()
	g.node.Manager.AdoptEpoch(gen)
	g.node.Manager.SetEpochFence(false)
	g.mu.Lock()
	cs := append([]*cdd.NodeClient(nil), g.clients...)
	g.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range cs {
		c.SetArrayEpoch(gen)
		if _, err := c.EpochSet(ctx, gen); err != nil {
			log.Printf("raidxnode: epoch %d broadcast to %s: %v", gen, c.Addr(), err)
		}
	}
	log.Printf("raidxnode: rebalance complete, epoch %d in force", gen)
}

// closeJoined closes the clients the coordinator dialed for grows.
func (g *rebalanceCoord) closeJoined() {
	g.mu.Lock()
	joined := g.joined
	g.joined = nil
	g.mu.Unlock()
	for _, c := range joined {
		c.Close()
	}
}
