// Command raidxnode runs one cooperative-disk-driver storage node: it
// exports a set of disks over the CDD wire protocol so remote clients
// can assemble distributed arrays across nodes. With several raidxnode
// processes (one per host, or per port on one host) and a client using
// the raidx package, the serverless cluster of the paper runs for real
// over TCP.
//
//	raidxnode -addr :7000 -disks 1 -blocks 4096 -bs 32768
//
// With -http the node additionally serves its observability surfaces:
//
//	raidxnode -addr :7000 -http :7080
//	curl http://localhost:7080/stats          # obs registry as JSON
//	curl http://localhost:7080/metrics        # Prometheus text format
//	curl http://localhost:7080/trace?n=5      # recent + slow traces, JSON
//	go tool pprof http://localhost:7080/debug/pprof/profile
//
// -pprof writes a CPU profile of the whole run to a file (stopped and
// flushed on shutdown), for profiling without the HTTP listener.
//
// Disks are in-memory by default (this reproduction's substitute for
// the Trojans cluster's SCSI drives); with -dir they become persistent
// file-backed images that survive restarts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "listen address")
	nDisks := flag.Int("disks", 1, "disks to export")
	blocks := flag.Int64("blocks", 4096, "blocks per disk")
	bs := flag.Int("bs", 32<<10, "block size (bytes)")
	name := flag.String("name", "node", "node name (disk id prefix)")
	dir := flag.String("dir", "", "directory for persistent disk images (empty: in-memory)")
	httpAddr := flag.String("http", "", "HTTP listen address for /stats, /metrics, /trace and pprof (empty: disabled)")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the whole run to this file")
	traceSlow := flag.Duration("trace-slow", 0, "slow-log promotion threshold for server-side traces (0: default, negative: disabled)")
	traceSample := flag.Int("trace-sample", 0, "record 1 in N server-side root traces (0: default)")
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			log.Fatalf("raidxnode: -pprof: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("raidxnode: -pprof: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("raidxnode: -pprof: %v", err)
			}
			log.Printf("raidxnode: CPU profile written to %s", *pprofOut)
		}()
	}

	disks := make([]*disk.Disk, *nDisks)
	for i := range disks {
		var st store.BlockStore
		if *dir == "" {
			st = store.NewMem(*bs, *blocks)
		} else {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			fst, err := store.OpenFile(filepath.Join(*dir, fmt.Sprintf("%s-d%d.img", *name, i)), *bs, *blocks)
			if err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			defer fst.Close()
			st = fst
		}
		disks[i] = disk.New(nil, fmt.Sprintf("%s-d%d", *name, i), st, disk.DefaultModel())
	}
	node, err := cdd.ListenAndServe(*addr, disks)
	if err != nil {
		log.Fatalf("raidxnode: %v", err)
	}
	log.Printf("raidxnode %s: exporting %d disk(s) x %d blocks x %d B on %s",
		*name, *nDisks, *blocks, *bs, node.Addr())

	tracer := node.Manager.Tracer()
	if *traceSlow != 0 {
		tracer.SetSlowThreshold(*traceSlow)
	}
	if *traceSample > 0 {
		tracer.SetSampleEvery(*traceSample)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := node.Manager.Obs().WriteJSON(w); err != nil {
				log.Printf("raidxnode: /stats: %v", err)
			}
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := node.Manager.Obs().WriteProm(w); err != nil {
				log.Printf("raidxnode: /metrics: %v", err)
			}
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			limit := 10
			if q := r.URL.Query().Get("n"); q != "" {
				if n, err := strconv.Atoi(q); err == nil {
					limit = n
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tracer.Snapshot(limit)); err != nil {
				log.Printf("raidxnode: /trace: %v", err)
			}
		})
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		srv := &http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("raidxnode %s: serving /stats /metrics /trace /debug/pprof on http://%s", *name, *httpAddr)
			if err := srv.ListenAndServe(); err != nil {
				log.Printf("raidxnode: http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("raidxnode %s: shutting down", *name)
	if err := node.Close(); err != nil {
		log.Printf("raidxnode: close: %v", err)
	}
}
