// Command raidxnode runs one cooperative-disk-driver storage node: it
// exports a set of disks over the CDD wire protocol so remote clients
// can assemble distributed arrays across nodes. With several raidxnode
// processes (one per host, or per port on one host) and a client using
// the raidx package, the serverless cluster of the paper runs for real
// over TCP.
//
//	raidxnode -addr :7000 -disks 1 -blocks 4096 -bs 32768
//
// With -http the node additionally serves its observability registry —
// per-disk op counts, queue backlogs, sequential-hit counts, and served
// operation counters — as JSON at /stats:
//
//	raidxnode -addr :7000 -http :7080
//	curl http://localhost:7080/stats
//
// Disks are in-memory by default (this reproduction's substitute for
// the Trojans cluster's SCSI drives); with -dir they become persistent
// file-backed images that survive restarts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/cdd"
	"repro/internal/disk"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "listen address")
	nDisks := flag.Int("disks", 1, "disks to export")
	blocks := flag.Int64("blocks", 4096, "blocks per disk")
	bs := flag.Int("bs", 32<<10, "block size (bytes)")
	name := flag.String("name", "node", "node name (disk id prefix)")
	dir := flag.String("dir", "", "directory for persistent disk images (empty: in-memory)")
	httpAddr := flag.String("http", "", "HTTP listen address for the JSON /stats endpoint (empty: disabled)")
	flag.Parse()

	disks := make([]*disk.Disk, *nDisks)
	for i := range disks {
		var st store.BlockStore
		if *dir == "" {
			st = store.NewMem(*bs, *blocks)
		} else {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			fst, err := store.OpenFile(filepath.Join(*dir, fmt.Sprintf("%s-d%d.img", *name, i)), *bs, *blocks)
			if err != nil {
				log.Fatalf("raidxnode: %v", err)
			}
			defer fst.Close()
			st = fst
		}
		disks[i] = disk.New(nil, fmt.Sprintf("%s-d%d", *name, i), st, disk.DefaultModel())
	}
	node, err := cdd.ListenAndServe(*addr, disks)
	if err != nil {
		log.Fatalf("raidxnode: %v", err)
	}
	log.Printf("raidxnode %s: exporting %d disk(s) x %d blocks x %d B on %s",
		*name, *nDisks, *blocks, *bs, node.Addr())

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := node.Manager.Obs().WriteJSON(w); err != nil {
				log.Printf("raidxnode: /stats: %v", err)
			}
		})
		go func() {
			log.Printf("raidxnode %s: serving stats on http://%s/stats", *name, *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("raidxnode: http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("raidxnode %s: shutting down", *name)
	if err := node.Close(); err != nil {
		log.Printf("raidxnode: close: %v", err)
	}
}
