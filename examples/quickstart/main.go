// Quickstart: build a RAID-x array over four in-memory disks, write
// and read data, survive a disk failure, and rebuild — the whole
// life cycle of the paper's orthogonal striping and mirroring in ~60
// lines of API use.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	raidx "repro"
)

func main() {
	ctx := context.Background()

	// Four disks, one per (conceptual) node: a 4x1 RAID-x.
	devs := raidx.NewMemDevs(4, 1024, 4096) // 4 disks x 1024 blocks x 4 KB
	arr, err := raidx.NewRAIDx(devs, 4, 1, raidx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAID-x 4x1: %d usable blocks of %d B (half the raw array)\n",
		arr.Blocks(), arr.BlockSize())

	// Write a striped file.
	data := make([]byte, 64*arr.BlockSize())
	rand.New(rand.NewSource(1)).Read(data)
	if err := arr.WriteBlocks(ctx, 0, data); err != nil {
		log.Fatal(err)
	}
	// Mirror images are written in the background; Flush makes the
	// array fully redundant.
	if err := arr.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	if err := arr.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 64 blocks; images verified (every block equals its image)")

	// Show where the orthogonal mirror groups went.
	lay := arr.Layout()
	for g := int64(0); g < 4; g++ {
		loc := lay.GroupLoc(g)
		blocks := lay.GroupBlocks(g)
		fmt.Printf("  mirror group %d (images of B%d..B%d) -> disk %d, one contiguous write\n",
			g, blocks[0], blocks[len(blocks)-1], loc.Disk)
	}

	// Kill a disk: reads keep working through the images.
	devs[2].(*raidx.Disk).Fail()
	got := make([]byte, len(data))
	if err := arr.ReadBlocks(ctx, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Println("disk 2 failed: degraded read OK (blocks served from orthogonal images)")

	// Writes continue in degraded mode too.
	update := make([]byte, 8*arr.BlockSize())
	rand.New(rand.NewSource(2)).Read(update)
	if err := arr.WriteBlocks(ctx, 10, update); err != nil {
		log.Fatal(err)
	}
	copy(data[10*arr.BlockSize():], update)
	fmt.Println("degraded write OK")

	// Replace the disk and rebuild it from the surviving copies.
	if err := devs[2].(*raidx.Disk).Replace(); err != nil {
		log.Fatal(err)
	}
	if err := arr.Rebuild(ctx, 2); err != nil {
		log.Fatal(err)
	}
	if err := arr.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	if err := arr.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	if err := arr.ReadBlocks(ctx, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data wrong after rebuild")
	}
	fmt.Println("disk 2 replaced and rebuilt: array fully redundant again")
}
