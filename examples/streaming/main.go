// streaming: the paper's "distributed multimedia processing" use case.
// N concurrent viewers each pull a media stream at a constant bitrate
// from the shared storage; a chunk that arrives after its playout
// deadline is a glitch. The experiment sweeps the viewer count on
// RAID-x and on the centralized NFS configuration and reports how many
// streams each can sustain glitch-free — the classic video-server
// admission question (the paper cites Hwang & Xu's work on clustered
// multimedia servers).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vclock"
)

const (
	bitrate   = 1.5e6 / 8 // 1.5 Mbps MPEG-1, in bytes/sec
	chunkSecs = 0.5       // playout buffer granularity
	streamLen = 20        // chunks per stream
)

// runStreams plays `viewers` concurrent streams and reports the total
// late-chunk count and worst lateness.
func runStreams(sys bench.System, viewers int) (glitches int, worst time.Duration, err error) {
	p := cluster.DefaultParams()
	if sys == bench.NFS {
		p.DiskBlocks *= int64(p.Nodes)
	}
	rig, err := bench.NewRig(p, sys, viewers, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	bs := rig.Arrays[0].BlockSize()
	chunkBytes := int(bitrate * chunkSecs)
	chunkBlocks := int64((chunkBytes + bs - 1) / bs)
	perStream := chunkBlocks * streamLen
	if perStream*int64(viewers) > rig.Arrays[0].Blocks() {
		return 0, 0, fmt.Errorf("media library exceeds capacity")
	}
	if err := rig.Prefill(perStream * int64(viewers)); err != nil {
		return 0, 0, err
	}

	late := make([]int, viewers)
	worstBy := make([]time.Duration, viewers)
	errs := make([]error, viewers)
	s := rig.C.Sim
	barrier := vclock.NewBarrier(s, "play", viewers)
	for v := 0; v < viewers; v++ {
		v := v
		s.Spawn(fmt.Sprintf("viewer%d", v), func(proc *vclock.Proc) {
			barrier.Wait(proc)
			ctx := vclock.With(context.Background(), proc)
			start := proc.Now()
			buf := make([]byte, chunkBlocks*int64(bs))
			for c := 0; c < streamLen; c++ {
				deadline := start + time.Duration(float64(c+1)*chunkSecs*float64(time.Second))
				b := int64(v)*perStream + int64(c)*chunkBlocks
				if err := rig.Arrays[v].ReadBlocks(ctx, b, buf); err != nil {
					errs[v] = err
					return
				}
				if lateBy := proc.Now() - deadline; lateBy > 0 {
					late[v]++
					if lateBy > worstBy[v] {
						worstBy[v] = lateBy
					}
				} else {
					// Model the playout pause until the next fetch.
					proc.SleepUntil(deadline)
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		return 0, 0, err
	}
	for v := range late {
		if errs[v] != nil {
			return 0, 0, errs[v]
		}
		glitches += late[v]
		if worstBy[v] > worst {
			worst = worstBy[v]
		}
	}
	return glitches, worst, nil
}

func main() {
	fmt.Printf("Media streaming: 1.5 Mbps streams, %.1f s chunks, %d chunks each.\n", chunkSecs, streamLen)
	fmt.Println("late chunks (worst lateness) by concurrent viewer count:")
	fmt.Printf("%-8s", "viewers")
	counts := []int{4, 8, 16, 24, 32}
	for _, v := range counts {
		fmt.Printf(" %12d", v)
	}
	fmt.Println()
	for _, sys := range []bench.System{bench.RAIDx, bench.NFS} {
		fmt.Printf("%-8s", sys)
		for _, v := range counts {
			g, w, err := runStreams(sys, v)
			if err != nil {
				log.Fatal(err)
			}
			cell := "0"
			if g > 0 {
				cell = fmt.Sprintf("%d (%.0fms)", g, w.Seconds()*1e3)
			}
			fmt.Printf(" %12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nRAID-x sustains every viewer glitch-free; the central server starts")
	fmt.Println("missing playout deadlines once its port and disk saturate.")
}
