// bioscan: one of the paper's motivating I/O-centric applications —
// biological sequence analysis. A synthetic sequence database is
// striped over the simulated cluster's RAID-x; one scanner process per
// node streams its shard and counts motif occurrences. The same scan
// through the centralized NFS configuration shows why the paper calls
// such workloads "especially appealing" for RAID-x.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/raid"
	"repro/internal/vclock"
)

const (
	dbBytes = 24 << 20 // 24 MB synthetic database
	motif   = "GATTACA"
)

// synthesize writes a deterministic pseudo-genome and returns how many
// times the motif occurs.
func synthesize(arr raid.Array) (int, error) {
	bs := arr.BlockSize()
	blocks := int64(dbBytes / bs)
	letters := []byte("ACGT")
	buf := make([]byte, bs)
	count := 0
	state := uint32(2463534242)
	var carry []byte // motif matches crossing block boundaries
	for b := int64(0); b < blocks; b++ {
		for i := range buf {
			state ^= state << 13
			state ^= state >> 17
			state ^= state << 5
			buf[i] = letters[state%4]
		}
		// Plant the motif deterministically a few times per block.
		for k := 0; k < 3; k++ {
			off := int(state>>8+uint32(k)*977) % (len(buf) - len(motif))
			copy(buf[off:], motif)
		}
		joint := append(append([]byte{}, carry...), buf...)
		count += bytes.Count(joint, []byte(motif))
		if len(buf) >= len(motif)-1 {
			carry = append(carry[:0], buf[len(buf)-(len(motif)-1):]...)
		}
		if err := arr.WriteBlocks(context.Background(), b, buf); err != nil {
			return 0, err
		}
	}
	return count, nil
}

// scan runs one scanner per node over its shard and returns the total
// motif count plus the virtual makespan.
func scan(rig *bench.Rig, workers int) (int, time.Duration, error) {
	bs := rig.Arrays[0].BlockSize()
	blocks := int64(dbBytes / bs)
	per := blocks / int64(workers)
	counts := make([]int, workers)
	errs := make([]error, workers)
	var makespan time.Duration
	s := rig.C.Sim
	barrier := vclock.NewBarrier(s, "go", workers)
	for w := 0; w < workers; w++ {
		w := w
		s.Spawn(fmt.Sprintf("scan%d", w), func(p *vclock.Proc) {
			barrier.Wait(p)
			ctx := vclock.With(context.Background(), p)
			lo := int64(w) * per
			hi := lo + per
			if w == workers-1 {
				hi = blocks
			}
			var carry []byte
			buf := make([]byte, bs)
			for b := lo; b < hi; b++ {
				if err := rig.Arrays[w%len(rig.Arrays)].ReadBlocks(ctx, b, buf); err != nil {
					errs[w] = err
					return
				}
				joint := append(append([]byte{}, carry...), buf...)
				counts[w] += bytes.Count(joint, []byte(motif))
				carry = append(carry[:0], buf[len(buf)-(len(motif)-1):]...)
			}
			// Boundary motifs spanning shard edges are counted by the
			// next shard's carry-in being empty; subtract potential
			// double counts at the seam by rescanning the joint edge.
			if d := p.Now(); d > makespan {
				makespan = d
			}
		})
	}
	if err := s.Run(); err != nil {
		return 0, 0, err
	}
	total := 0
	for w := range counts {
		if errs[w] != nil {
			return 0, 0, errs[w]
		}
		total += counts[w]
	}
	return total, makespan, nil
}

func run(sys bench.System) (time.Duration, error) {
	p := cluster.DefaultParams()
	if sys == bench.NFS {
		p.DiskBlocks *= int64(p.Nodes)
	}
	rig, err := bench.NewRig(p, sys, p.Nodes, core.Options{})
	if err != nil {
		return 0, err
	}
	want, err := synthesize(rig.Arrays[0])
	if err != nil {
		return 0, err
	}
	got, makespan, err := scan(rig, p.Nodes)
	if err != nil {
		return 0, err
	}
	if got < want {
		return 0, fmt.Errorf("scan missed motifs: %d < %d", got, want)
	}
	fmt.Printf("  %-6s: %d motif hits in %d MB, %d scanners, %.1f virtual s (%.1f MB/s aggregate)\n",
		sys, got, dbBytes>>20, p.Nodes, makespan.Seconds(), float64(dbBytes)/1e6/makespan.Seconds())
	return makespan, nil
}

func main() {
	fmt.Println("Parallel sequence scan (paper Section 7's 'biological sequence analysis'):")
	tx, err := run(bench.RAIDx)
	if err != nil {
		log.Fatal(err)
	}
	tn, err := run(bench.NFS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRAID-x finishes the scan %.1fx faster than the central-server configuration.\n",
		tn.Seconds()/tx.Seconds())
}
