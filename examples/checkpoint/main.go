// checkpoint: the paper's Section 6 — coordinated checkpointing of 12
// parallel processes onto the distributed array, comparing all four
// schemes and showing the striped+staggered slot timeline of Figure 7,
// plus recovery of a checkpoint through a disk failure.
package main

import (
	"context"
	"fmt"
	"log"

	raidx "repro"
	"repro/internal/bench"
	"repro/internal/chkpt"
	"repro/internal/cluster"
	"repro/internal/vclock"
)

func main() {
	p := cluster.DefaultParams()
	cfg := chkpt.Config{Processes: 12, ImageBytes: 2 << 20, Slots: 3, LocalImages: true}

	fmt.Println("Coordinated checkpointing, 12 processes x 2 MB images (Figure 7):")
	fmt.Println("C = per-process checkpoint overhead, S = sync overhead")
	results, err := bench.Figure7(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(" ", r)
		for i, e := range r.SlotEnds {
			fmt.Printf("    stripe group %d committed at %.0f ms\n", i, e.Seconds()*1e3)
		}
	}
	fmt.Println("\nStriped staggering trades a longer round (makespan) for the")
	fmt.Println("smallest per-process overhead — the paper's Figure 7 tradeoff.")

	// Recovery demo: write a checkpoint, lose a disk, read it back.
	ctx := context.Background()
	devs := raidx.NewMemDevs(4, 2048, 32<<10)
	arrays := make([]raidx.Array, 4)
	nodes := []int{0, 1, 2, 3}
	for i := range arrays {
		a, err := raidx.NewRAIDx(devs, 4, 1, raidx.Options{})
		if err != nil {
			log.Fatal(err)
		}
		arrays[i] = a
	}
	plan, err := chkpt.NewPlan(arrays, nodes, chkpt.Config{Processes: 4, ImageBytes: 256 << 10, LocalImages: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := chkpt.Round(vclock.New(), arrays, plan, chkpt.StripedStaggered); err != nil {
		log.Fatal(err)
	}
	devs[3].(*raidx.Disk).Fail()
	if _, err := plan.ReadImage(ctx, arrays[0], 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRecovery: process 0's checkpoint read back intact after a disk failure.")
}
