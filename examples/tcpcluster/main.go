// tcpcluster: the serverless distributed array running for real over
// TCP. Four cooperative-disk-driver nodes are started in-process on
// loopback (in production each would be a raidxnode on its own host), a
// RAID-x is assembled over their exported disks, a file system with
// lock-group consistency is built on top, and a node failure plus
// rebuild is exercised end to end.
package main

import (
	"context"
	"fmt"
	"log"

	raidx "repro"
)

func main() {
	ctx := context.Background()
	const nodes = 4

	// Start four CDD storage nodes (each would normally be `raidxnode`
	// on a separate host).
	var addrs []string
	for i := 0; i < nodes; i++ {
		disks := []*raidx.Disk{raidx.NewMemDisk(fmt.Sprintf("n%d-d0", i), 32<<10, 1024)}
		node, err := raidx.ListenAndServe("127.0.0.1:0", disks)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
		fmt.Printf("node %d listening on %s\n", i, node.Addr())
	}

	// Connect a client to every node; the remote disks masquerade as
	// local devices — the single I/O space.
	var clients []*raidx.NodeClient
	devs := make([]raidx.Dev, nodes)
	for i, addr := range addrs {
		c, err := raidx.Connect(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
		devs[i] = c.Dev(0)
	}

	arr, err := raidx.NewRAIDx(devs, nodes, 1, raidx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled RAID-x over TCP: %d blocks x %d B\n", arr.Blocks(), arr.BlockSize())

	// A file system on the distributed array, with CDD lock-group
	// consistency.
	table := raidx.NewLockTable()
	fs, err := raidx.Mkfs(ctx, arr, raidx.NewTableLocker(table), "demo", raidx.FSOptions{MaxInodes: 1024})
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.MkdirAll(ctx, "/projects/raidx"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "/projects/raidx/README", []byte("distributed, serverless, fault tolerant")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("file system created; file written through the SIOS")

	// Fail node 1's disk over the wire; the file survives through the
	// orthogonal images.
	if err := clients[1].FailDisk(0); err != nil {
		log.Fatal(err)
	}
	devs[1].(*raidx.RemoteDev).InvalidateHealth()
	got, err := fs.ReadFile(ctx, "/projects/raidx/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1 disk failed: file still readable: %q\n", got)

	// Hot-swap and rebuild.
	if err := clients[1].ReplaceDisk(0); err != nil {
		log.Fatal(err)
	}
	devs[1].(*raidx.RemoteDev).InvalidateHealth()
	if err := arr.Rebuild(ctx, 1); err != nil {
		log.Fatal(err)
	}
	if err := arr.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 1 disk replaced and rebuilt; redundancy verified over TCP")
}
