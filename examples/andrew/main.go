// andrew: run the Andrew benchmark (the paper's Figure 6 workload) on
// the simulated 12-node Trojans cluster, comparing RAID-x against the
// RAID-5 and NFS configurations at a modest client count.
package main

import (
	"fmt"
	"log"

	"repro/internal/andrew"
	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	p := cluster.DefaultParams()
	cfg := andrew.DefaultConfig()
	const clients = 8

	fmt.Printf("Andrew benchmark, %d clients on a %d-node simulated cluster\n", clients, p.Nodes)
	fmt.Printf("(%d dirs, %d files of ~%d KB per client; times in virtual seconds)\n\n",
		cfg.Dirs, cfg.Files, cfg.FileSize>>10)
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %9s\n", "system", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "total")

	for _, sys := range []bench.System{bench.RAIDx, bench.RAID10, bench.RAID5, bench.NFS} {
		r, err := bench.RunAndrew(p, sys, clients, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f\n", sys,
			r.Phase["MakeDir"].Seconds(), r.Phase["Copy"].Seconds(), r.Phase["ScanDir"].Seconds(),
			r.Phase["ReadAll"].Seconds(), r.Phase["Make"].Seconds(), r.Total.Seconds())
	}
	fmt.Println("\nThe ordering reproduces the paper's Figure 6: RAID-x fastest,")
	fmt.Println("the centralized NFS configuration far behind at scale.")
}
