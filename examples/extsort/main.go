// extsort: an out-of-core external merge sort running entirely on the
// RAID-x file system — the paper's "data mining" application class.
// A dataset bigger than the configured memory budget is sorted by
// streaming sorted runs onto the distributed array and k-way merging
// them, all through the FS's sequential reader/writer handles.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sort"

	raidx "repro"
)

const (
	records   = 512 << 10 // 512Ki records x 8 B = 4 MiB dataset
	memBudget = 64 << 10  // in-memory sort capacity: 64Ki records
	recSize   = 8
)

func main() {
	ctx := context.Background()
	arr, err := raidx.NewRAIDx(raidx.NewMemDevs(4, 2048, 32<<10), 4, 1, raidx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := raidx.Mkfs(ctx, arr, raidx.NewTableLocker(raidx.NewLockTable()), "extsort", raidx.FSOptions{MaxInodes: 256})
	if err != nil {
		log.Fatal(err)
	}

	// Generate the unsorted dataset (deterministic xorshift).
	fmt.Printf("generating %d records (%d MiB) on the array...\n", records, records*recSize>>20)
	in, err := fs.Create(ctx, "/input")
	if err != nil {
		log.Fatal(err)
	}
	w := in.Writer(ctx, 0)
	state := uint64(88172645463325252)
	buf := make([]byte, memBudget*recSize)
	written := 0
	for written < records {
		n := memBudget
		if records-written < n {
			n = records - written
		}
		for i := 0; i < n; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			binary.BigEndian.PutUint64(buf[i*recSize:], state)
		}
		if _, err := w.Write(buf[:n*recSize]); err != nil {
			log.Fatal(err)
		}
		written += n
	}

	// Phase 1: sorted run generation within the memory budget.
	fmt.Printf("phase 1: generating sorted runs of %d records...\n", memBudget)
	r := in.Reader(ctx)
	var runs []string
	keys := make([]uint64, memBudget)
	for runID := 0; ; runID++ {
		total := 0
		for total < len(buf) {
			n, err := r.Read(buf[total:])
			total += n
			if err != nil || n == 0 {
				break
			}
		}
		if total == 0 {
			break
		}
		nrec := total / recSize
		for i := 0; i < nrec; i++ {
			keys[i] = binary.BigEndian.Uint64(buf[i*recSize:])
		}
		ks := keys[:nrec]
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for i, k := range ks {
			binary.BigEndian.PutUint64(buf[i*recSize:], k)
		}
		name := fmt.Sprintf("/run%02d", runID)
		rf, err := fs.Create(ctx, name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rf.Writer(ctx, 0).Write(buf[:total]); err != nil {
			log.Fatal(err)
		}
		runs = append(runs, name)
		if total < len(buf) {
			break
		}
	}
	fmt.Printf("  %d runs written\n", len(runs))

	// Phase 2: k-way merge of all runs into /sorted.
	fmt.Println("phase 2: k-way merge...")
	type cursor struct {
		r    *raidx.File
		rd   interface{ Read([]byte) (int, error) }
		buf  []byte
		pos  int
		fill int
		done bool
	}
	cursors := make([]*cursor, len(runs))
	for i, name := range runs {
		f, err := fs.Open(ctx, name)
		if err != nil {
			log.Fatal(err)
		}
		c := &cursor{r: f, rd: f.Reader(ctx), buf: make([]byte, 64<<10)}
		cursors[i] = c
	}
	refill := func(c *cursor) {
		if c.done || c.pos < c.fill {
			return
		}
		n, err := c.rd.Read(c.buf)
		c.fill, c.pos = n-(n%recSize), 0
		if err != nil || c.fill == 0 {
			c.done = true
		}
	}
	for _, c := range cursors {
		refill(c)
	}
	out, err := fs.Create(ctx, "/sorted")
	if err != nil {
		log.Fatal(err)
	}
	ow := out.Writer(ctx, 0)
	obuf := make([]byte, 0, 64<<10)
	var merged, last uint64
	count := 0
	for {
		best := -1
		for i, c := range cursors {
			if c.done {
				continue
			}
			k := binary.BigEndian.Uint64(c.buf[c.pos:])
			if best < 0 || k < merged {
				best, merged = i, k
			}
		}
		if best < 0 {
			break
		}
		if count > 0 && merged < last {
			log.Fatalf("merge produced out-of-order key at %d", count)
		}
		last = merged
		count++
		obuf = binary.BigEndian.AppendUint64(obuf, merged)
		if len(obuf) == cap(obuf) {
			if _, err := ow.Write(obuf); err != nil {
				log.Fatal(err)
			}
			obuf = obuf[:0]
		}
		c := cursors[best]
		c.pos += recSize
		refill(c)
	}
	if len(obuf) > 0 {
		if _, err := ow.Write(obuf); err != nil {
			log.Fatal(err)
		}
	}
	if count != records {
		log.Fatalf("merged %d records, want %d", count, records)
	}

	// Verify the output end to end.
	fmt.Println("verifying /sorted...")
	vf, err := fs.Open(ctx, "/sorted")
	if err != nil {
		log.Fatal(err)
	}
	vr := vf.Reader(ctx)
	var prev uint64
	checked := 0
	vbuf := make([]byte, 64<<10)
	for {
		n, err := vr.Read(vbuf)
		for i := 0; i+recSize <= n; i += recSize {
			k := binary.BigEndian.Uint64(vbuf[i:])
			if checked > 0 && k < prev {
				log.Fatalf("output not sorted at record %d", checked)
			}
			prev = k
			checked++
		}
		if err != nil {
			break
		}
	}
	fmt.Printf("sorted and verified %d records out-of-core on the distributed array\n", checked)
}
